//! Figure 20: ablation — raw-HarmonyBC, +update-reorder, +update-coalesce,
//! +inter-block, under low and high contention on all three workloads.

use harmony_bench::{default_run, f2, measure, Table, WorkloadKind};
use harmony_core::HarmonyConfig;
use harmony_sim::EngineKind;

fn main() {
    let mut t = Table::new(
        "fig20_ablation",
        &[
            "workload",
            "contention",
            "config",
            "throughput_tps",
            "abort_rate",
            "cpu_util",
        ],
    );
    let tiers: [(&str, HarmonyConfig); 4] = [
        ("raw", HarmonyConfig::raw()),
        ("+reorder", HarmonyConfig::with_reordering()),
        ("+coalesce", HarmonyConfig::with_coalescence()),
        ("+inter-block", HarmonyConfig::default()),
    ];
    let cases: Vec<(&str, &str, WorkloadKind)> = vec![
        ("YCSB", "low", WorkloadKind::Ycsb { theta: 0.0 }),
        ("YCSB", "high", WorkloadKind::Ycsb { theta: 0.99 }),
        ("Smallbank", "low", WorkloadKind::Smallbank { theta: 0.0 }),
        ("Smallbank", "high", WorkloadKind::Smallbank { theta: 0.99 }),
        ("TPC-C", "low", WorkloadKind::Tpcc { warehouses: 40 }),
        ("TPC-C", "high", WorkloadKind::Tpcc { warehouses: 1 }),
    ];
    for (wl, contention, workload) in &cases {
        for (label, config) in tiers {
            let m = measure(EngineKind::Harmony(config), workload, &default_run(25)).unwrap();
            t.row(vec![
                (*wl).into(),
                (*contention).into(),
                label.into(),
                f2(m.throughput_tps),
                f2(m.abort_rate),
                f2(m.cpu_utilization),
            ]);
        }
    }
    t.emit();
}
