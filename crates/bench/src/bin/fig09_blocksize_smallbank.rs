//! Figure 9: impact of block size (Smallbank). Block size is also the degree
//! of concurrency for the concurrent systems (one worker per transaction).

use harmony_bench::{all_systems, default_run, f2, measure, Table, WorkloadKind, BLOCK_SIZES};

fn main() {
    let mut t = Table::new(
        "fig09_blocksize_smallbank",
        &["system", "block_size", "throughput_tps", "latency_ms"],
    );
    for kind in all_systems() {
        for size in BLOCK_SIZES {
            let workload = WorkloadKind::Smallbank { theta: 0.6 };
            let m = measure(kind, &workload, &default_run(size)).unwrap();
            t.row(vec![
                m.system.into(),
                size.to_string(),
                f2(m.throughput_tps),
                f2(m.latency_ms),
            ]);
        }
    }
    t.emit();
}
