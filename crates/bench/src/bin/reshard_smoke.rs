//! CI reshard smoke: elastic resharding end to end, in two legs.
//!
//! **Leg 1 — streaming split 1→2→4 vs fixed-count reference.** A
//! 4-replica Kafka cluster starts on one shard and splits twice
//! mid-workload via topology-change marker blocks (heights 3 and 6).
//! For every engine it must stay internally consistent and end with the
//! *logical* database — folded root and per-table heads — bit-identical
//! to a static 4-shard cluster fed the same seed.
//!
//! **Leg 2 — crash across the handover window.** The same elastic
//! schedule with a replica crashing mid-reshard and rejoining through
//! state-sync across the topology boundary: it must land on the
//! bit-identical physical roots of the no-crash elastic run, on the
//! final layout, at the final epoch.
//!
//! Artifact: `EXPERIMENTS-results/reshard_smoke.json`
//! (schema `harmonybc-reshard/v1`, checked by
//! `crates/bench/tests/bench_schema.rs` and uploaded by CI's
//! bench-smoke step).

use std::fmt::Write as _;

use harmony_bench::results_dir;
use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, ReshardAt, ReshardSchedule, ShardTopology,
    SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};

const PARTITIONS: u32 = 16;
const MS: u64 = 1_000_000;

/// 1→2→4: split at global heights 3 and 6.
fn split_schedule() -> ReshardSchedule {
    ReshardSchedule::new(vec![
        ReshardAt {
            height: 3,
            new_shards: 2,
        },
        ReshardAt {
            height: 6,
            new_shards: 4,
        },
    ])
}

fn run(
    engine: EngineKind,
    shards: usize,
    reshards: ReshardSchedule,
    crash: Option<CrashPlan>,
) -> ClusterReport {
    Cluster::new(ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 3,
                ..ChainConfig::default()
            },
            engine,
            workers: 2,
            gossip_every: 5,
        },
        topology: Some(ShardTopology {
            shards,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: 0,
        }),
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 400,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: 0.25,
        }),
        ordering: OrderingMode::Kafka { brokers: 3 },
        faults: crash.map(FaultSchedule::from).unwrap_or_default(),
        reshards,
        mempool: MempoolConfig::default(),
        open_loop: OpenLoopConfig {
            clients: 6,
            rate_tps: 30_000.0,
            hot_share: 0.0,
        },
        load_ns: 12 * MS,
        drain_ns: 600 * MS,
        block_txns: 20,
        // Count-driven sealing: marker blocks must not shift workload
        // batch boundaries relative to the fixed-count reference.
        eager_seal: true,
        batch_interval_ns: 1 << 50,
        window: 4,
        sync: SyncPolicy::default(),
        seed: 0x2E5A,
        ..ClusterConfig::default()
    })
    .run()
    .expect("cluster run")
}

struct Leg1Point {
    engine: &'static str,
    committed: usize,
    sealed_blocks: u64,
    logical_identical: bool,
    heads_identical: bool,
}

fn main() {
    // Leg 1: streaming split vs fixed-count reference, every engine.
    let engines: [(&'static str, EngineKind); 5] = [
        ("harmony", EngineKind::Harmony(HarmonyConfig::default())),
        ("aria", EngineKind::Aria),
        ("rbc", EngineKind::Rbc),
        ("fabric", EngineKind::Fabric),
        ("fastfabric", EngineKind::FastFabric),
    ];
    let mut points = Vec::new();
    println!("engine      committed sealed logical_identical heads_identical");
    for (name, engine) in engines {
        let fixed = run(engine, 4, ReshardSchedule::default(), None);
        assert!(fixed.consistent, "{name}: fixed run diverged");
        let elastic = run(engine, 1, split_schedule(), None);
        assert!(elastic.consistent, "{name}: elastic run diverged");
        assert!(
            elastic.metrics.stats.committed > 0,
            "{name}: nothing committed"
        );
        for r in &elastic.replicas {
            assert_eq!(
                r.reshards, 2,
                "{name}: replica {} missed a marker",
                r.replica
            );
            assert_eq!(r.hosted_shards, 4, "{name}: wrong final layout");
        }
        let logical_identical = elastic.replicas[0].logical_root == fixed.replicas[0].logical_root;
        let heads_identical = elastic.replicas[0].table_heads == fixed.replicas[0].table_heads;
        assert!(
            logical_identical && heads_identical,
            "{name}: elastic 1→2→4 diverged from the fixed 4-shard reference"
        );
        println!(
            "{name:<11} {:>9} {:>6} {:>17} {:>15}",
            elastic.metrics.stats.committed,
            elastic.sealed_blocks,
            logical_identical,
            heads_identical,
        );
        points.push(Leg1Point {
            engine: name,
            committed: elastic.metrics.stats.committed,
            sealed_blocks: elastic.sealed_blocks,
            logical_identical,
            heads_identical,
        });
    }

    // Leg 2: a crash across the handover window must not change a bit.
    let engine = EngineKind::Harmony(HarmonyConfig::default());
    let elastic = run(engine, 1, split_schedule(), None);
    let crashed = run(
        engine,
        1,
        split_schedule(),
        Some(CrashPlan {
            replica: 2,
            at_ns: 4 * MS,
            recover_at_ns: 10 * MS,
        }),
    );
    assert!(crashed.consistent, "crash leg diverged");
    assert_eq!(crashed.replicas[2].recoveries, 1, "no recovery ran");
    let crash_roots_identical = crashed
        .replicas
        .iter()
        .zip(&elastic.replicas)
        .all(|(c, e)| c.root == e.root && c.height == e.height);
    assert!(
        crash_roots_identical,
        "crash during the reshard window changed the committed state"
    );
    assert_eq!(crashed.replicas[2].hosted_shards, 4, "stale layout");
    assert_eq!(crashed.replicas[2].reshards, 2, "stale epoch");
    println!(
        "\ncrash leg OK: roots identical, victim recovered onto 4 shards \
         at epoch 2 (sync_blocks {})",
        crashed.replicas[2].sync_blocks
    );

    // JSON artifact for CI (schema: harmonybc-reshard/v1).
    let mut json = String::from("{\n  \"schema\": \"harmonybc-reshard/v1\",\n");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"committed\": {}, \"sealed_blocks\": {}, \
             \"logical_identical\": {}, \"heads_identical\": {}}}{}",
            p.engine,
            p.committed,
            p.sealed_blocks,
            p.logical_identical,
            p.heads_identical,
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"crash\": {{\"roots_identical\": {}, \"recoveries\": {}, \
         \"sync_blocks\": {}, \"hosted_shards\": {}, \"epoch\": {}}}",
        crash_roots_identical,
        crashed.replicas[2].recoveries,
        crashed.replicas[2].sync_blocks,
        crashed.replicas[2].hosted_shards,
        crashed.replicas[2].reshards,
    );
    json.push_str("}\n");
    let path = results_dir().join("reshard_smoke.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}
