//! Figure 7: overall throughput and latency on Smallbank (block size tuned
//! to optimal per system).

use harmony_bench::{all_systems, f2, measure_tuned, Table, WorkloadKind, BLOCK_SIZES};

fn main() {
    let mut t = Table::new(
        "fig07_overall_smallbank",
        &[
            "system",
            "block_size",
            "throughput_tps",
            "latency_ms",
            "abort_rate",
        ],
    );
    for kind in all_systems() {
        let (size, m) =
            measure_tuned(kind, &WorkloadKind::Smallbank { theta: 0.6 }, &BLOCK_SIZES).unwrap();
        t.row(vec![
            m.system.into(),
            size.to_string(),
            f2(m.throughput_tps),
            f2(m.latency_ms),
            f2(m.abort_rate),
        ]);
    }
    t.emit();
}
