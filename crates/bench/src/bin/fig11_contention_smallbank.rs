//! Figure 11: impact of contention (Smallbank), sweeping the Zipfian skew.

use harmony_bench::{all_systems, default_run, f2, measure, Table, WorkloadKind};

fn main() {
    let mut t = Table::new(
        "fig11_contention_smallbank",
        &["system", "skew", "throughput_tps", "abort_rate"],
    );
    for kind in all_systems() {
        for theta in [0.0, 0.2, 0.4, 0.6, 0.8, 0.99] {
            let workload = WorkloadKind::Smallbank { theta };
            let m = measure(kind, &workload, &default_run(25)).unwrap();
            t.row(vec![
                m.system.into(),
                theta.to_string(),
                f2(m.throughput_tps),
                f2(m.abort_rate),
            ]);
        }
    }
    t.emit();
}
