//! Figure 24 (extension): **sharded node runtime** scaling — N replicas ×
//! M shards on the discrete-event network — next to Figure 22's
//! single-process shard-group scaling.
//!
//! For each engine and M ∈ {1, 2, 4}, a 4-replica cluster runs every
//! replica as a [`harmony_node::ShardedReplicaNode`] (ordered global
//! blocks → cross-shard planning → per-shard sub-block chains), and the
//! same (workload, M) point runs through `run_sharded_experiment` (the
//! fig22 path). Both speedup curves are normalized to their own M=1
//! baseline: the node runtime carries ordering, sealing, and per-shard
//! logging on top of pure execution, so absolute throughput differs, but
//! the *scaling shape* must match — sharding pays off identically whether
//! the group lives in one process or behind a replicated chain.
//!
//! Every point asserts bit-identical sharded state roots across the four
//! replicas. Output: the usual CSV plus
//! `EXPERIMENTS-results/fig24_sharded_node.json` (schema-checked by
//! `crates/bench/tests/bench_schema.rs`, uploaded by CI's bench-smoke
//! job).

use std::fmt::Write as _;

use harmony_bench::{all_systems, f2, results_dir, Table};
use harmony_chain::ChainConfig;
use harmony_consensus::net::LatencyModel;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterWorkload, MempoolConfig, OrderingMode, ReplicaConfig,
    ShardTopology, SyncPolicy,
};
use harmony_sim::{run_sharded_experiment, EngineKind, RunConfig, ShardRunConfig};
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, Smallbank, SmallbankConfig};

const REPLICAS: usize = 4;
const WORKERS: usize = 2;
const BLOCK_TXNS: usize = 24;
const PARTITIONS: u32 = 16;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const CROSS_RATIO: f64 = 0.05;

fn workload_config() -> SmallbankConfig {
    SmallbankConfig {
        accounts: 2_000,
        theta: 0.4,
        partitions: u64::from(PARTITIONS),
        multi_partition_ratio: CROSS_RATIO,
    }
}

fn node_run(engine: EngineKind, shards: usize) -> harmony_node::ClusterReport {
    Cluster::new(ClusterConfig {
        replicas: REPLICAS,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::default(),
                crypto: CryptoCost::free(),
                checkpoint_every: 10,
                ..ChainConfig::default()
            },
            engine,
            workers: WORKERS,
            gossip_every: 10,
        },
        topology: Some(ShardTopology {
            shards,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: 0,
        }),
        workload: ClusterWorkload::Smallbank(workload_config()),
        ordering: OrderingMode::Kafka { brokers: 3 },
        latency: LatencyModel::lan_1g(),
        mempool: MempoolConfig {
            capacity: 4_096,
            ..MempoolConfig::default()
        },
        // Saturating offered load: the sharded DB layer must be the
        // bottleneck so scaling reflects execution, not arrivals.
        open_loop: OpenLoopConfig {
            clients: 16,
            rate_tps: 150_000.0,
            hot_share: 0.0,
        },
        load_ns: 30_000_000,
        drain_ns: 4_000_000_000,
        block_txns: BLOCK_TXNS,
        batch_interval_ns: 250_000,
        window: 8,
        sync: SyncPolicy::default(),
        faults: Default::default(),
        metrics_every_ns: 5_000_000,
        seed: 0xF124,
        ..ClusterConfig::default()
    })
    .run()
    .expect("sharded cluster run")
}

fn single_process_run(engine: EngineKind, shards: usize) -> harmony_sim::RunMetrics {
    let mut w = Smallbank::new(workload_config());
    run_sharded_experiment(
        engine,
        &mut w,
        &ShardRunConfig {
            base: RunConfig {
                blocks: 30,
                block_size: BLOCK_TXNS,
                workers: WORKERS,
                storage: StorageConfig::default(),
                seed: 0xF124,
                retry_aborts: true,
            },
            shards,
            partitions: PARTITIONS,
            latency: LatencyModel::lan_1g(),
        },
    )
    .expect("single-process sharded run")
}

struct Point {
    system: String,
    shards: usize,
    node_tps: f64,
    node_speedup: f64,
    sp_tps: f64,
    sp_speedup: f64,
    shape_ratio: f64,
    consistent: bool,
}

fn main() {
    let mut table = Table::new(
        "fig24_sharded_node",
        &[
            "system",
            "shards",
            "node_tps",
            "node_speedup",
            "fig22_tps",
            "fig22_speedup",
            "shape_ratio",
            "roots_identical",
        ],
    );
    let mut points: Vec<Point> = Vec::new();

    for kind in all_systems() {
        let mut node_base = 0.0f64;
        let mut sp_base = 0.0f64;
        for shards in SHARD_COUNTS {
            let report = node_run(kind, shards);
            assert!(
                report.consistent,
                "{}×{shards}: replicas diverged",
                kind.name()
            );
            let sp = single_process_run(kind, shards);
            if shards == 1 {
                node_base = report.metrics.throughput_tps;
                sp_base = sp.throughput_tps;
            }
            let node_speedup = report.metrics.throughput_tps / node_base.max(1.0);
            let sp_speedup = sp.throughput_tps / sp_base.max(1.0);
            points.push(Point {
                system: kind.name().to_string(),
                shards,
                node_tps: report.metrics.throughput_tps,
                node_speedup,
                sp_tps: sp.throughput_tps,
                sp_speedup,
                shape_ratio: node_speedup / sp_speedup.max(f64::EPSILON),
                consistent: report.consistent,
            });
            let p = points.last().unwrap();
            // The acceptance band: normalized to its own 1-shard
            // baseline, the replicated runtime scales like the
            // single-process group (observed shape ratios 0.93–1.00
            // across all five engines at M ∈ {2, 4}).
            assert!(
                (0.85..=1.15).contains(&p.shape_ratio),
                "{}×{shards}: node-runtime scaling shape drifted from \
                 fig22: node {:.2}x vs single-process {:.2}x",
                kind.name(),
                p.node_speedup,
                p.sp_speedup
            );
            table.row(vec![
                p.system.clone(),
                p.shards.to_string(),
                f2(p.node_tps),
                f2(p.node_speedup),
                f2(p.sp_tps),
                f2(p.sp_speedup),
                f2(p.shape_ratio),
                p.consistent.to_string(),
            ]);
        }
        // The headline shape: with ~5% cross-shard traffic, four shards
        // must deliver real scaling on the node runtime, like fig22's
        // single-process curve.
        let four = points.last().expect("4-shard point");
        assert!(
            four.node_speedup > 1.3,
            "{}: 4-shard node runtime failed to scale: {:.2}x",
            kind.name(),
            four.node_speedup
        );
    }
    table.emit();

    // JSON artifact for CI (schema: harmonybc-fig24/v1).
    let mut json = String::from("{\n  \"schema\": \"harmonybc-fig24/v1\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"system\": \"{}\", \"shards\": {}, \"node_tps\": {:.2}, \
             \"node_speedup\": {:.4}, \"fig22_tps\": {:.2}, \"fig22_speedup\": {:.4}, \
             \"shape_ratio\": {:.4}, \"roots_identical\": {}}}{}",
            p.system,
            p.shards,
            p.node_tps,
            p.node_speedup,
            p.sp_tps,
            p.sp_speedup,
            p.shape_ratio,
            p.consistent,
            if i + 1 == points.len() { "\n" } else { ",\n" }
        );
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("fig24_sharded_node.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}
