//! Figure 14: hotspot resiliency — 1% hot records, merged RMW UPDATE
//! statements, sweeping the per-statement hot probability.

use harmony_bench::{default_run, f2, measure, relational_systems, Table, WorkloadKind};

fn main() {
    let mut t = Table::new(
        "fig14_hotspot",
        &["system", "hot_prob", "throughput_tps", "abort_rate"],
    );
    for kind in relational_systems() {
        for hot in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let m = measure(
                kind,
                &WorkloadKind::YcsbHotspot { hot_prob: hot },
                &default_run(25),
            )
            .unwrap();
            t.row(vec![
                m.system.into(),
                hot.to_string(),
                f2(m.throughput_tps),
                f2(m.abort_rate),
            ]);
        }
    }
    t.emit();
}
