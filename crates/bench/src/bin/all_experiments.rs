//! Run every table/figure harness in sequence (writes
//! `EXPERIMENTS-results/*.csv`). Equivalent to running each `figXX_*`
//! binary individually.

use std::process::Command;

fn main() {
    let bins = [
        "fig01_gap",
        "table03_hitrate",
        "fig07_overall_smallbank",
        "fig08_overall_ycsb",
        "fig09_blocksize_smallbank",
        "fig10_blocksize_ycsb",
        "fig11_contention_smallbank",
        "fig12_contention_ycsb",
        "fig13_false_aborts",
        "fig14_hotspot",
        "fig15_replicas_smallbank",
        "fig16_replicas_ycsb",
        "fig17_bft_smallbank",
        "fig18_bft_ycsb",
        "fig19_tpcc",
        "fig20_ablation",
        "fig21_storage_media",
        "fig22_shard_scaling",
    ];
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        eprintln!("▶ {bin}");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    eprintln!("all experiments complete; CSVs in EXPERIMENTS-results/");
}
