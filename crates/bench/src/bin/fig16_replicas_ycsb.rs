//! Figure 16: impact of the number of replicas (Ycsb). OE replicas
//! work independently (flat); SOV read-write-set fan-out degrades with the
//! replica count.

use harmony_bench::{all_systems, f2, measure_tuned, Table, WorkloadKind, BLOCK_SIZES};
use harmony_consensus::net::LatencyModel;
use harmony_dcc_baselines::Architecture;
use harmony_sim::{ClusterModel, EngineKind};

fn main() {
    let mut t = Table::new(
        "fig16_replicas_ycsb",
        &["system", "replicas", "throughput_tps", "latency_ms"],
    );
    // Sustained replication bandwidth of the cloud instances (burst 5 Gbps,
    // sustained ~1 Gbps on t3-class nodes).
    let model = ClusterModel::Kafka {
        latency: LatencyModel::lan_1g(),
    };
    let workload = WorkloadKind::Ycsb { theta: 0.6 };
    for kind in all_systems() {
        let (size, db) = measure_tuned(kind, &workload, &BLOCK_SIZES).unwrap();
        let arch = match kind {
            EngineKind::Fabric | EngineKind::FastFabric => Architecture::Sov,
            _ => Architecture::Oe,
        };
        for replicas in [4usize, 20, 40, 60, 80] {
            let m = model.compose(&db, arch, replicas, size as u64);
            t.row(vec![
                m.system.into(),
                replicas.to_string(),
                f2(m.throughput_tps),
                f2(m.latency_ms),
            ]);
        }
    }
    t.emit();
}
