//! Figure 23 (extension): the end-to-end **node runtime** versus the
//! analytic cluster composition.
//!
//! A 4-replica cluster — open-loop clients → mempool → ordering (Kafka
//! and HotStuff) → sealed-block delivery → per-replica execution — is
//! *run* on the discrete-event network, and its measured throughput and
//! latency are placed next to the `ClusterModel` composition of the same
//! (engine × workload) point. At saturation the two must agree: the DB
//! layer is the bottleneck in both, so the node runtime validates the
//! analytic model (and the analytic model cross-checks the runtime).
//!
//! A crash/catch-up column reruns each Kafka point with one replica
//! crashing mid-run and rejoining via state-sync, asserting bit-identical
//! final roots.
//!
//! Output: the usual CSV plus `EXPERIMENTS-results/fig23_node_e2e.json`
//! (uploaded by CI's bench-smoke job next to the perf trajectory).

use std::fmt::Write as _;

use harmony_bench::{all_systems, f2, measure, results_dir, Table, WorkloadKind};
use harmony_chain::ChainConfig;
use harmony_consensus::net::LatencyModel;
use harmony_crypto::CryptoCost;
use harmony_dcc_baselines::Architecture;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, SyncPolicy,
};
use harmony_sim::{ClusterModel, EngineKind, RunConfig};
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig, YcsbConfig};

const REPLICAS: usize = 4;
const WORKERS: usize = 4;
const BLOCK_TXNS: usize = 32;

fn cluster_config(
    engine: EngineKind,
    workload: ClusterWorkload,
    ordering: OrderingMode,
    crash: Option<CrashPlan>,
) -> ClusterConfig {
    ClusterConfig {
        replicas: REPLICAS,
        topology: None,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::default(),
                crypto: CryptoCost::free(),
                checkpoint_every: 10,
                ..ChainConfig::default()
            },
            engine,
            workers: WORKERS,
            gossip_every: 10,
        },
        workload,
        ordering,
        faults: crash.map(FaultSchedule::from).unwrap_or_default(),
        latency: LatencyModel::lan_1g(),
        mempool: MempoolConfig {
            capacity: 4_096,
            ..MempoolConfig::default()
        },
        // Saturating offered load: the DB layer, not arrivals, must be
        // the bottleneck, as in the analytic composition.
        open_loop: OpenLoopConfig {
            clients: 16,
            rate_tps: 120_000.0,
            hot_share: 0.0,
        },
        load_ns: 60_000_000,
        drain_ns: 4_000_000_000,
        block_txns: BLOCK_TXNS,
        batch_interval_ns: 250_000,
        window: 8,
        sync: SyncPolicy::default(),
        metrics_every_ns: 5_000_000,
        seed: 0xF123,
        ..ClusterConfig::default()
    }
}

fn node_workload(kind: &WorkloadKind) -> ClusterWorkload {
    match kind {
        WorkloadKind::Smallbank { theta } => ClusterWorkload::Smallbank(SmallbankConfig {
            theta: *theta,
            ..SmallbankConfig::default()
        }),
        _ => ClusterWorkload::Ycsb(YcsbConfig {
            theta: 0.6,
            ..YcsbConfig::default()
        }),
    }
}

struct Point {
    system: String,
    ordering: &'static str,
    node_tps: f64,
    analytic_tps: f64,
    ratio: f64,
    node_latency_ms: f64,
    analytic_latency_ms: f64,
    consistent: bool,
    crash_consistent: bool,
    crash_sync_blocks: u64,
}

fn main() {
    let mut table = Table::new(
        "fig23_node_e2e",
        &[
            "system",
            "ordering",
            "node_tps",
            "analytic_tps",
            "ratio",
            "node_lat_ms",
            "analytic_lat_ms",
            "roots_identical",
            "crash_rejoin_ok",
        ],
    );
    let workload = WorkloadKind::Smallbank { theta: 0.6 };
    let mut points: Vec<Point> = Vec::new();

    for kind in all_systems() {
        let db = measure(
            kind,
            &workload,
            &RunConfig {
                blocks: 40,
                block_size: BLOCK_TXNS,
                workers: WORKERS,
                storage: StorageConfig::default(),
                seed: 0xF123,
                retry_aborts: true,
            },
        )
        .unwrap();
        let arch = match kind {
            EngineKind::Fabric | EngineKind::FastFabric => Architecture::Sov,
            _ => Architecture::Oe,
        };
        for (ordering, model) in [
            (
                OrderingMode::Kafka { brokers: 3 },
                ClusterModel::Kafka {
                    latency: LatencyModel::lan_1g(),
                },
            ),
            (
                OrderingMode::HotStuff,
                ClusterModel::HotStuff {
                    latency: LatencyModel::lan_1g(),
                },
            ),
        ] {
            let analytic = model.compose(&db, arch, REPLICAS, BLOCK_TXNS as u64);
            let report = Cluster::new(cluster_config(
                kind,
                node_workload(&workload),
                ordering,
                None,
            ))
            .run()
            .unwrap();
            let ordering_name = match ordering {
                OrderingMode::Kafka { .. } => "kafka",
                OrderingMode::HotStuff => "hotstuff",
            };
            // Crash/catch-up variant (Kafka only — one per engine keeps
            // the figure fast).
            let crash: Option<ClusterReport> = match ordering {
                OrderingMode::Kafka { .. } => Some(
                    Cluster::new(cluster_config(
                        kind,
                        node_workload(&workload),
                        ordering,
                        Some(CrashPlan {
                            replica: 2,
                            at_ns: 20_000_000,
                            recover_at_ns: 40_000_000,
                        }),
                    ))
                    .run()
                    .unwrap(),
                ),
                OrderingMode::HotStuff => None,
            };
            let ratio = report.metrics.throughput_tps / analytic.throughput_tps.max(1.0);
            points.push(Point {
                system: kind.name().to_string(),
                ordering: ordering_name,
                node_tps: report.metrics.throughput_tps,
                analytic_tps: analytic.throughput_tps,
                ratio,
                node_latency_ms: report.metrics.latency_ms,
                analytic_latency_ms: analytic.latency_ms,
                consistent: report.consistent,
                crash_consistent: crash.as_ref().is_none_or(|c| c.consistent),
                crash_sync_blocks: crash.as_ref().map_or(0, |c| c.replicas[2].sync_blocks),
            });
            let p = points.last().unwrap();
            assert!(
                p.consistent,
                "{} {}: replicas diverged",
                p.system, p.ordering
            );
            assert!(
                p.crash_consistent,
                "{} {}: crash rejoin diverged",
                p.system, p.ordering
            );
            // The acceptance band: at saturation the node runtime and the
            // analytic composition measure the same DB-layer bottleneck
            // (observed ratios are 0.99–1.04 across all ten points).
            assert!(
                (0.9..=1.1).contains(&p.ratio),
                "{} {}: node runtime drifted from the analytic model: \
                 node={:.0} tps vs analytic={:.0} tps (ratio {:.3})",
                p.system,
                p.ordering,
                p.node_tps,
                p.analytic_tps,
                p.ratio
            );
            table.row(vec![
                p.system.clone(),
                p.ordering.to_string(),
                f2(p.node_tps),
                f2(p.analytic_tps),
                f2(p.ratio),
                f2(p.node_latency_ms),
                f2(p.analytic_latency_ms),
                p.consistent.to_string(),
                p.crash_consistent.to_string(),
            ]);
        }
    }
    table.emit();

    // JSON artifact for CI (schema: harmonybc-fig23/v1).
    let mut json = String::from("{\n  \"schema\": \"harmonybc-fig23/v1\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"system\": \"{}\", \"ordering\": \"{}\", \"node_tps\": {:.2}, \
             \"analytic_tps\": {:.2}, \"ratio\": {:.4}, \"node_latency_ms\": {:.3}, \
             \"analytic_latency_ms\": {:.3}, \"roots_identical\": {}, \
             \"crash_rejoin_ok\": {}, \"crash_sync_blocks\": {}}}{}",
            p.system,
            p.ordering,
            p.node_tps,
            p.analytic_tps,
            p.ratio,
            p.node_latency_ms,
            p.analytic_latency_ms,
            p.consistent,
            p.crash_consistent,
            p.crash_sync_blocks,
            if i + 1 == points.len() { "\n" } else { ",\n" }
        );
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("fig23_node_e2e.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}
