//! CI chaos smoke: the fault-injection plane and the overload path, end
//! to end, in two legs.
//!
//! **Leg 1 — convergence under chaos.** A fixed multi-fault schedule
//! (crash/rejoin cycle, partition window, lossy link, sync-serve
//! refusals, one poisoned root gossip) runs against a 4-replica Kafka
//! cluster and must land on the *same final roots* as a no-fault run of
//! the same seed, with the never-faulted observer committing throughout
//! and the poisoned replica self-quarantining and re-syncing.
//!
//! **Leg 2 — graceful degradation under overload (figure 25).** An
//! offered-load sweep pushes a 4-tenant cluster far past saturation with
//! a hot tenant, per-tenant admission quotas, and client retry/backoff
//! enabled. Goodput must not collapse past the knee, and the quota must
//! keep every well-behaved tenant within 10% of its fair share of
//! sealed transactions.
//!
//! Artifact: `EXPERIMENTS-results/fig25_overload.json`
//! (schema `harmonybc-fig25/v1`, checked by
//! `crates/bench/tests/bench_schema.rs` and uploaded by CI's
//! chaos-smoke step).

use std::fmt::Write as _;

use harmony_bench::{f2, results_dir};
use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, FaultEvent, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, RetryPolicy, SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};

const PARTITIONS: u32 = 16;
const TENANTS: usize = 4;
const MS: u64 = 1_000_000;

fn base_config() -> ClusterConfig {
    ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 3,
                ..ChainConfig::default()
            },
            engine: EngineKind::Harmony(HarmonyConfig::default()),
            workers: 2,
            gossip_every: 2,
        },
        topology: None,
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 400,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: 0.2,
        }),
        ordering: OrderingMode::Kafka { brokers: 3 },
        mempool: MempoolConfig {
            capacity: 1_024,
            ..MempoolConfig::default()
        },
        open_loop: OpenLoopConfig {
            clients: 8,
            rate_tps: 30_000.0,
            hot_share: 0.0,
        },
        load_ns: 20_000_000,
        drain_ns: 600_000_000,
        block_txns: 24,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed: 0xC4A05,
        ..ClusterConfig::default()
    }
}

/// Leg 1: the fixed chaos schedule must converge on the no-fault roots.
fn chaos_leg() -> (ClusterReport, bool) {
    let reference = Cluster::new(base_config()).run().expect("reference run");
    assert!(reference.consistent, "reference run diverged");

    let mut cfg = base_config();
    cfg.faults = FaultSchedule::new(vec![
        FaultEvent::Crash {
            replica: 2,
            at_ns: 4 * MS,
            recover_at_ns: 10 * MS,
        },
        FaultEvent::Partition {
            replica: 1,
            from_ns: 3 * MS,
            until_ns: 6 * MS,
        },
        FaultEvent::LinkDrop {
            from: 0,
            to: 3,
            from_ns: 2 * MS,
            until_ns: 7 * MS,
            per_mille: 600,
        },
        // Replica 0 refuses to serve sync while the poisoned replica
        // re-syncs, so the quarantine recovery has to fail over.
        FaultEvent::SyncRefusal {
            replica: 0,
            from_ns: 9 * MS,
            until_ns: 30 * MS,
        },
        // Poisoned once every replica is healthy again: a quorum of
        // peers must dispute the root for self-quarantine to trigger.
        FaultEvent::PoisonRoot {
            replica: 3,
            at_ns: 12 * MS,
        },
    ]);
    let chaos = Cluster::new(cfg).run().expect("chaos run");

    assert!(
        chaos.metrics.stats.committed > 0,
        "observer starved under chaos"
    );
    assert!(chaos.consistent, "chaos run diverged");
    for (c, r) in chaos.replicas.iter().zip(&reference.replicas) {
        assert_eq!(
            c.root, r.root,
            "replica {} root diverged from the no-fault reference",
            c.replica
        );
    }
    assert_eq!(chaos.replicas[2].recoveries, 1, "crash cycle did not run");
    assert!(
        chaos.replicas[3].quarantines >= 1,
        "poisoned replica never self-quarantined"
    );
    assert!(
        chaos.divergence_alarms > 0,
        "poisoned gossip raised no alarms"
    );
    let roots_identical = chaos
        .replicas
        .iter()
        .zip(&reference.replicas)
        .all(|(c, r)| c.root == r.root);
    (chaos, roots_identical)
}

struct OverloadPoint {
    offered_tps: f64,
    report: ClusterReport,
}

/// Leg 2: offered-load sweep past saturation with a hot tenant, quotas,
/// and client retry enabled.
fn overload_sweep() -> Vec<OverloadPoint> {
    let mut points = Vec::new();
    for offered in [20_000.0, 40_000.0, 80_000.0, 160_000.0, 320_000.0] {
        let mut cfg = base_config();
        cfg.mempool = MempoolConfig {
            capacity: 1_024,
            tenants: TENANTS,
            tenant_quota: Some(1_024 / TENANTS),
            ..MempoolConfig::default()
        };
        // 12 cold clients — three per tenant by `client % tenants` — plus
        // the hot client 0, which concentrates 40% of all arrivals on
        // tenant 0.
        cfg.open_loop = OpenLoopConfig {
            clients: 13,
            rate_tps: offered,
            hot_share: 0.4,
        };
        // Client-side retry with a tight budget: resubmissions resolve
        // within a few ms of the load window, so throughput (committed
        // over the last-commit instant) measures sealing capacity, not
        // a straggler's backoff tail.
        cfg.client_retry = Some(RetryPolicy {
            base_timeout_ns: 500_000,
            max_backoff_ns: 2_000_000,
            max_retries: 3,
        });
        let report = Cluster::new(cfg).run().expect("overload run");
        assert!(report.consistent, "overload run diverged at {offered} tps");
        points.push(OverloadPoint {
            offered_tps: offered,
            report,
        });
    }

    // Graceful degradation: the deepest-overload point keeps at least
    // 70% of the peak goodput instead of collapsing.
    let peak = points
        .iter()
        .map(|p| p.report.metrics.throughput_tps)
        .fold(0.0, f64::max);
    let deepest = points.last().unwrap();
    assert!(
        deepest.report.metrics.throughput_tps >= 0.7 * peak,
        "goodput collapsed past saturation: {:.0} tps vs peak {:.0} tps",
        deepest.report.metrics.throughput_tps,
        peak
    );
    // The overload machinery actually engaged.
    assert!(
        deepest.report.mempool.rejected_tenant_quota > 0,
        "hot tenant never hit its quota"
    );
    assert!(
        deepest.report.client_retries > 0,
        "clients never retried a reject"
    );
    // Quota isolation: each well-behaved tenant (1..3 — tenant 0 holds
    // the hot client) seals within 10% of the well-behaved mean.
    let cold: Vec<u64> = deepest.report.tenant_sealed[1..].to_vec();
    let mean = cold.iter().sum::<u64>() as f64 / cold.len() as f64;
    for (i, &sealed) in cold.iter().enumerate() {
        let dev = (sealed as f64 - mean).abs() / mean;
        assert!(
            dev <= 0.10,
            "tenant {} sealed {sealed} txns, {:.1}% off the fair share {mean:.0}",
            i + 1,
            dev * 100.0
        );
    }
    points
}

fn main() {
    let (chaos, roots_identical) = chaos_leg();
    println!(
        "chaos leg OK: roots identical, observer committed {}, \
         recoveries {}, quarantines {}, sync retries {}, alarms {}",
        chaos.metrics.stats.committed,
        chaos.replicas.iter().map(|r| r.recoveries).sum::<u64>(),
        chaos.quarantines,
        chaos.replicas.iter().map(|r| r.sync_retries).sum::<u64>(),
        chaos.divergence_alarms,
    );

    let points = overload_sweep();
    println!("\noffered_tps goodput_tps latency_ms quota_rejects retries tenant_sealed");
    for p in &points {
        println!(
            "{:>11} {:>11} {:>10} {:>13} {:>7} {:?}",
            f2(p.offered_tps),
            f2(p.report.metrics.throughput_tps),
            f2(p.report.metrics.latency_ms),
            p.report.mempool.rejected_tenant_quota,
            p.report.client_retries,
            p.report.tenant_sealed,
        );
    }

    // JSON artifact for CI (schema: harmonybc-fig25/v1).
    let mut json = String::from("{\n  \"schema\": \"harmonybc-fig25/v1\",\n");
    let _ = writeln!(
        json,
        "  \"chaos\": {{\"roots_identical\": {}, \"observer_committed\": {}, \
         \"recoveries\": {}, \"quarantines\": {}, \"sync_retries\": {}, \
         \"divergence_alarms\": {}}},",
        roots_identical,
        chaos.metrics.stats.committed,
        chaos.replicas.iter().map(|r| r.recoveries).sum::<u64>(),
        chaos.quarantines,
        chaos.replicas.iter().map(|r| r.sync_retries).sum::<u64>(),
        chaos.divergence_alarms,
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let tenants = p
            .report
            .tenant_sealed
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"offered_tps\": {:.2}, \"goodput_tps\": {:.2}, \"latency_ms\": {:.3}, \
             \"admitted\": {}, \"rejected_backpressure\": {}, \"rejected_quota\": {}, \
             \"client_retries\": {}, \"retry_drops\": {}, \"tenant_sealed\": [{}]}}{}",
            p.offered_tps,
            p.report.metrics.throughput_tps,
            p.report.metrics.latency_ms,
            p.report.mempool.admitted,
            p.report.mempool.rejected_backpressure,
            p.report.mempool.rejected_tenant_quota,
            p.report.client_retries,
            p.report.client_retry_drops,
            tenants,
            if i + 1 == points.len() { "\n" } else { ",\n" }
        );
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("fig25_overload.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}
