//! Figure 13: false abort rate (aborts that a full-graph oracle would have
//! committed). FastFabric# is excluded, as in the paper — its graph
//! traversal eliminates false aborts by construction.

use harmony_bench::{false_aborts_in, pct, run_with_inspector, Table, WorkloadKind};
use harmony_core::HarmonyConfig;
use harmony_sim::EngineKind;

fn rate(kind: EngineKind, workload: &WorkloadKind) -> (f64, f64) {
    let mut fa = 0u64;
    let mut aborts = 0u64;
    let mut txns = 0u64;
    run_with_inspector(kind, workload, 20, 25, |res| {
        let (f, a) = false_aborts_in(res);
        fa += f;
        aborts += a;
        txns += (res.stats.txns - res.stats.user_aborted) as u64;
    })
    .unwrap();
    (
        fa as f64 / txns.max(1) as f64,
        aborts as f64 / txns.max(1) as f64,
    )
}

fn main() {
    let mut t = Table::new(
        "fig13_false_aborts",
        &[
            "workload",
            "system",
            "skew",
            "false_abort_rate",
            "abort_rate",
        ],
    );
    let systems = [
        EngineKind::Harmony(HarmonyConfig::default()),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
    ];
    #[allow(clippy::type_complexity)]
    let cases: [(&str, fn(f64) -> WorkloadKind); 2] = [
        ("YCSB", |theta| WorkloadKind::Ycsb { theta }),
        ("Smallbank", |theta| WorkloadKind::Smallbank { theta }),
    ];
    for (wl_name, make) in cases {
        for kind in systems {
            for theta in [0.0, 0.4, 0.8, 0.99] {
                let (f, a) = rate(kind, &make(theta));
                t.row(vec![
                    wl_name.into(),
                    kind.name().into(),
                    theta.to_string(),
                    pct(f),
                    pct(a),
                ]);
            }
        }
    }
    t.emit();
}
