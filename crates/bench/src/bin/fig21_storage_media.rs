//! Figure 21: is Harmony still useful without disk overheads? SSD vs
//! RAMDisk vs a pure memory engine, with the consensus ceiling shown.

use harmony_bench::{default_run, f2, measure, storage_with_profile, Table, WorkloadKind};
use harmony_consensus::{KafkaConfig, KafkaSim};
use harmony_core::HarmonyConfig;
use harmony_sim::EngineKind;
use harmony_storage::{DiskProfile, StorageCost};

fn main() {
    let mut t = Table::new(
        "fig21_storage_media",
        &["workload", "medium", "system", "throughput_tps"],
    );
    #[allow(clippy::type_complexity)]
    let workloads: Vec<(&str, fn() -> WorkloadKind)> = vec![
        ("YCSB", || WorkloadKind::Ycsb { theta: 0.6 }),
        ("Smallbank", || WorkloadKind::Smallbank { theta: 0.6 }),
        ("TPC-C", || WorkloadKind::Tpcc { warehouses: 20 }),
    ];
    for (wl_name, make) in &workloads {
        for (medium, profile, free_cpu) in [
            ("SSD", DiskProfile::ssd(), false),
            ("RAMDisk", DiskProfile::ramdisk(), false),
            // "Memory engine": no disk latency and no buffer-management
            // CPU (the Stonebraker costs (i) and (ii) both removed).
            ("memory-engine", DiskProfile::memory(), true),
        ] {
            for kind in [
                EngineKind::Aria,
                EngineKind::Harmony(HarmonyConfig::default()),
            ] {
                let mut config = default_run(25);
                config.storage = storage_with_profile(profile);
                if free_cpu {
                    config.storage.cost = StorageCost {
                        buffer_hit_ns: 50,
                        buffer_miss_cpu_ns: 50,
                        node_search_ns: 100,
                        node_write_ns: 150,
                        scan_per_record_ns: 30,
                        statement_ns: 2_000,
                    };
                }
                let m = measure(kind, &make(), &config).unwrap();
                t.row(vec![
                    (*wl_name).into(),
                    medium.into(),
                    m.system.into(),
                    f2(m.throughput_tps),
                ]);
            }
        }
    }
    // The consensus ceiling the memory engine runs into.
    let consensus = KafkaSim::new(KafkaConfig {
        replicas: 4,
        block_txns: 4_000,
        ..KafkaConfig::default()
    })
    .run(4_000_000_000);
    t.row(vec![
        "-".into(),
        "-".into(),
        "consensus-ceiling".into(),
        f2(consensus.throughput_tps),
    ]);
    t.emit();
}
