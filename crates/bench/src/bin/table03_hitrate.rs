//! Table 3: hit rate of the backward dangerous structure per workload.

use harmony_bench::{pct, run_with_inspector, Table, WorkloadKind};
use harmony_core::HarmonyConfig;
use harmony_sim::EngineKind;

fn hit_rate(workload: &WorkloadKind) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    run_with_inspector(
        EngineKind::Harmony(HarmonyConfig::default()),
        workload,
        20,
        25,
        |res| {
            hits += res.stats.aborted_rule1 + res.stats.aborted_interblock;
            total += res.stats.txns - res.stats.user_aborted;
        },
    )
    .unwrap();
    hits as f64 / total.max(1) as f64
}

fn main() {
    let mut t = Table::new("table03_hitrate", &["workload", "param", "hit_rate"]);
    for theta in [0.0, 0.2, 0.4, 0.6, 0.8, 0.99] {
        t.row(vec![
            "YCSB".into(),
            format!("skew={theta}"),
            pct(hit_rate(&WorkloadKind::Ycsb { theta })),
        ]);
    }
    for theta in [0.0, 0.2, 0.4, 0.6, 0.8, 0.99] {
        t.row(vec![
            "Smallbank".into(),
            format!("skew={theta}"),
            pct(hit_rate(&WorkloadKind::Smallbank { theta })),
        ]);
    }
    for w in [1u64, 20, 40] {
        t.row(vec![
            "TPC-C".into(),
            format!("warehouses={w}"),
            pct(hit_rate(&WorkloadKind::Tpcc { warehouses: w })),
        ]);
    }
    t.emit();
}
