//! Figure 1: the database layer is the bottleneck of disk-based private
//! blockchains — consensus (even 80-node WAN BFT) outruns disk DB layers.

use harmony_bench::{f2, measure_tuned, Table, WorkloadKind, BLOCK_SIZES};
use harmony_consensus::net::LatencyModel;
use harmony_consensus::{HotStuffConfig, HotStuffSim};
use harmony_sim::EngineKind;

fn main() {
    let mut table = Table::new("fig01_gap", &["layer", "system", "throughput_tps"]);
    let workload = WorkloadKind::Smallbank { theta: 0.6 };
    for kind in [EngineKind::Fabric, EngineKind::FastFabric, EngineKind::Rbc] {
        let (_, m) = measure_tuned(kind, &workload, &BLOCK_SIZES).unwrap();
        table.row(vec![
            "disk DB".into(),
            m.system.into(),
            f2(m.throughput_tps),
        ]);
    }
    // Memory DB layer (Aria on a zero-latency engine).
    let mem = harmony_bench::storage_with_profile(harmony_storage::DiskProfile::memory());
    let mut config = harmony_bench::default_run(75);
    config.storage = mem;
    let m = harmony_bench::measure(EngineKind::Aria, &workload, &config).unwrap();
    table.row(vec![
        "memory DB".into(),
        "Aria".into(),
        f2(m.throughput_tps),
    ]);
    for (name, nodes, batch, latency) in [
        // Batch sizes tuned per network: small batches keep LAN latency
        // low; WAN rounds need large batches to stay throughput-bound.
        ("HotStuff 80-node LAN", 80, 512, LatencyModel::lan_5g()),
        (
            "HotStuff 80-node WAN",
            80,
            4_000,
            LatencyModel::wan_4_continents(),
        ),
    ] {
        let report = HotStuffSim::new(HotStuffConfig {
            nodes,
            block_txns: batch,
            timeout_ns: 8_000_000_000,
            latency,
            ..HotStuffConfig::default()
        })
        .run(6_000_000_000);
        table.row(vec![
            "consensus".into(),
            name.into(),
            f2(report.throughput_tps),
        ]);
    }
    table.emit();
}
