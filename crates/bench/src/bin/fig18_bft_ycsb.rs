//! BFT (HotStuff) vs Kafka consensus (Ycsb). Nodes beyond 20 are
//! geo-distributed over four continents, as in the paper's cloud cluster.

use harmony_bench::{f2, measure_tuned, Table, WorkloadKind, BLOCK_SIZES};
use harmony_consensus::net::LatencyModel;
use harmony_core::HarmonyConfig;
use harmony_dcc_baselines::Architecture;
use harmony_sim::{ClusterModel, EngineKind};

fn main() {
    let mut t = Table::new(
        "fig18_bft_ycsb",
        &["consensus", "nodes", "throughput_tps", "latency_ms"],
    );
    let workload = WorkloadKind::Ycsb { theta: 0.6 };
    let (size, db) = measure_tuned(
        EngineKind::Harmony(HarmonyConfig::default()),
        &workload,
        &BLOCK_SIZES,
    )
    .unwrap();
    for nodes in [4usize, 20, 40, 60, 80] {
        // ≤ 20 nodes: one region; beyond: the 4-continent WAN.
        let latency = if nodes <= 20 {
            LatencyModel::lan_5g()
        } else {
            LatencyModel::wan_4_continents()
        };
        for (label, model) in [
            (
                "HarmonyBC(BFT)",
                ClusterModel::HotStuff {
                    latency: latency.clone(),
                },
            ),
            (
                "HarmonyBC(Kafka)",
                ClusterModel::Kafka {
                    latency: latency.clone(),
                },
            ),
        ] {
            let m = model.compose(&db, Architecture::Oe, nodes, size as u64);
            t.row(vec![
                label.into(),
                nodes.to_string(),
                f2(m.throughput_tps),
                f2(m.latency_ms),
            ]);
        }
    }
    t.emit();
}
