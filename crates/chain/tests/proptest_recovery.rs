//! Crash-recovery properties across all five engines.
//!
//! The invariant: crashing an [`OeChain`] node at *any* block boundary —
//! checkpoint boundaries and mid-checkpoint-interval alike — and
//! recovering (checkpoint reload + deterministic replay through the
//! engine factory) must reproduce the exact state root and chain hash of
//! a reference node that never crashed, for every engine kind.

use std::sync::Arc;

use harmony_chain::{ChainConfig, OeChain};
use harmony_common::{BlockId, DetRng};
use harmony_core::HarmonyConfig;
use harmony_crypto::Digest;
use harmony_sim::EngineKind;
use harmony_workloads::{
    Smallbank, SmallbankCodec, SmallbankConfig, Workload, Ycsb, YcsbCodec, YcsbConfig,
};
use proptest::prelude::*;

fn all_engines() -> [EngineKind; 5] {
    [
        EngineKind::Harmony(HarmonyConfig {
            workers: 2,
            ..HarmonyConfig::default()
        }),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
        EngineKind::FastFabric,
    ]
}

#[derive(Clone, Copy, Debug)]
enum Mix {
    Smallbank,
    Ycsb,
}

struct Fixture {
    chain: OeChain,
    codec: Arc<dyn harmony_txn::ContractCodec>,
    workload: Box<dyn Workload>,
}

fn fixture(kind: EngineKind, mix: Mix, checkpoint_every: u64) -> Fixture {
    let config = ChainConfig {
        checkpoint_every,
        ..ChainConfig::in_memory()
    };
    let chain = OeChain::open_with_factory(
        config,
        Arc::new(move |store, next, summary| kind.build_at(store, 2, next, summary)),
    )
    .unwrap();
    let mut f = match mix {
        Mix::Smallbank => {
            let mut w = Smallbank::new(SmallbankConfig {
                accounts: 120,
                theta: 0.7,
                ..SmallbankConfig::default()
            });
            w.setup(chain.engine()).unwrap();
            let (checking, savings) = w.tables();
            Fixture {
                chain,
                codec: Arc::new(SmallbankCodec { checking, savings }),
                workload: Box::new(w),
            }
        }
        Mix::Ycsb => {
            let mut w = Ycsb::new(YcsbConfig {
                keys: 150,
                theta: 0.8,
                ..YcsbConfig::default()
            });
            w.setup(chain.engine()).unwrap();
            let codec = Arc::new(YcsbCodec { table: w.table() });
            Fixture {
                chain,
                codec,
                workload: Box::new(w),
            }
        }
    };
    // Genesis checkpoint: make the initial load durable, so a crash
    // before the first periodic checkpoint can still replay from block 1
    // (the discipline a production deployment would follow).
    f.chain.checkpoint().unwrap();
    f
}

/// Run `blocks` blocks, crashing (and recovering) after each block listed
/// in `crashes`. Returns (state root, last hash).
fn run(
    kind: EngineKind,
    mix: Mix,
    checkpoint_every: u64,
    seed: u64,
    blocks: u64,
    block_size: usize,
    crashes: &[u64],
) -> (Digest, Digest) {
    let mut f = fixture(kind, mix, checkpoint_every);
    let mut rng = DetRng::new(seed);
    for b in 1..=blocks {
        let txns = f.workload.next_block(&mut rng, block_size);
        f.chain.submit_block(txns, f.codec.as_ref()).unwrap();
        if crashes.contains(&b) {
            f.chain.crash_and_recover(f.codec.as_ref()).unwrap();
            assert_eq!(f.chain.height(), BlockId(b), "recovery lost height");
        }
    }
    (f.chain.state_root().unwrap(), f.chain.last_hash())
}

#[test]
fn crash_at_every_block_boundary_matches_reference_all_engines() {
    // checkpoint_every = 3 with 8 blocks: crash points cover checkpoint
    // boundaries (3, 6) and every mid-interval position.
    const BLOCKS: u64 = 8;
    for kind in all_engines() {
        let reference = run(kind, Mix::Smallbank, 3, 0xCAFE, BLOCKS, 15, &[]);
        for crash_at in 1..=BLOCKS {
            let crashed = run(kind, Mix::Smallbank, 3, 0xCAFE, BLOCKS, 15, &[crash_at]);
            assert_eq!(
                crashed,
                reference,
                "{}: crash after block {crash_at} diverged",
                kind.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized crash schedules (including repeated crashes and
    /// checkpoint periods of 1..=5) reproduce the reference run for a
    /// randomly chosen engine and workload mix.
    #[test]
    fn random_crash_schedules_match_reference(
        seed in 0u64..1_000,
        engine_idx in 0usize..5,
        mix_sel in 0u8..2,
        checkpoint_every in 1u64..6,
        crash_a in 1u64..9,
        crash_b in 1u64..9,
    ) {
        let kind = all_engines()[engine_idx];
        let mix = if mix_sel == 0 { Mix::Smallbank } else { Mix::Ycsb };
        let mut crashes = vec![crash_a, crash_b];
        crashes.sort_unstable();
        crashes.dedup();
        let reference = run(kind, mix, checkpoint_every, seed, 8, 12, &[]);
        let crashed = run(kind, mix, checkpoint_every, seed, 8, 12, &crashes);
        prop_assert_eq!(
            crashed,
            reference,
            "{} ({:?}, p={}) diverged after crashes at {:?}",
            kind.name(),
            mix,
            checkpoint_every,
            crashes
        );
    }
}
