//! Incremental-commitment equivalence properties across all five engines.
//!
//! The invariant: the incrementally folded state commitment (the cached
//! [`OeChain::state_root`]) is **bit-identical** to the full-scan oracle
//! [`harmony_chain::state_root`] after every block, across crash
//! recovery at every block boundary, and after a checkpoint-manifest
//! install — for every engine kind and workload mix.

use std::sync::Arc;

use harmony_chain::{fold_table_roots, state_root, ChainConfig, OeChain, StateSnapshot};
use harmony_common::{BlockId, DetRng};
use harmony_core::HarmonyConfig;
use harmony_crypto::AuthMap;
use harmony_sim::EngineKind;
use harmony_workloads::{
    Smallbank, SmallbankCodec, SmallbankConfig, Workload, Ycsb, YcsbCodec, YcsbConfig,
};
use proptest::prelude::*;

fn all_engines() -> [EngineKind; 5] {
    [
        EngineKind::Harmony(HarmonyConfig {
            workers: 2,
            ..HarmonyConfig::default()
        }),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
        EngineKind::FastFabric,
    ]
}

#[derive(Clone, Copy, Debug)]
enum Mix {
    Smallbank,
    Ycsb,
}

struct Fixture {
    chain: OeChain,
    codec: Arc<dyn harmony_txn::ContractCodec>,
    workload: Box<dyn Workload>,
}

fn fixture(kind: EngineKind, mix: Mix, checkpoint_every: u64) -> Fixture {
    let config = ChainConfig {
        checkpoint_every,
        ..ChainConfig::in_memory()
    };
    let chain = OeChain::open_with_factory(
        config,
        Arc::new(move |store, next, summary| kind.build_at(store, 2, next, summary)),
    )
    .unwrap();
    let mut f = match mix {
        Mix::Smallbank => {
            let mut w = Smallbank::new(SmallbankConfig {
                accounts: 100,
                theta: 0.7,
                ..SmallbankConfig::default()
            });
            w.setup(chain.engine()).unwrap();
            let (checking, savings) = w.tables();
            Fixture {
                chain,
                codec: Arc::new(SmallbankCodec { checking, savings }),
                workload: Box::new(w),
            }
        }
        Mix::Ycsb => {
            let mut w = Ycsb::new(YcsbConfig {
                keys: 120,
                theta: 0.8,
                ..YcsbConfig::default()
            });
            w.setup(chain.engine()).unwrap();
            let codec = Arc::new(YcsbCodec { table: w.table() });
            Fixture {
                chain,
                codec,
                workload: Box::new(w),
            }
        }
    };
    f.chain.checkpoint().unwrap();
    f
}

/// Assert the cached incremental root equals the full-scan oracle.
fn assert_root_matches_oracle(chain: &OeChain, context: &str) {
    let incremental = chain.state_root().unwrap();
    let oracle = state_root(chain.engine()).unwrap();
    assert_eq!(
        incremental, oracle,
        "{context}: incremental commitment diverged from full-scan oracle"
    );
    assert!(
        chain.root_is_cached(),
        "{context}: root not cached after state_root()"
    );
}

#[test]
fn incremental_root_matches_oracle_after_every_block_all_engines() {
    for kind in all_engines() {
        for mix in [Mix::Smallbank, Mix::Ycsb] {
            let mut f = fixture(kind, mix, 3);
            let mut rng = DetRng::new(0x600D);
            for b in 1..=6u64 {
                let txns = f.workload.next_block(&mut rng, 12);
                f.chain.submit_block(txns, f.codec.as_ref()).unwrap();
                assert_root_matches_oracle(
                    &f.chain,
                    &format!("{} ({mix:?}) block {b}", kind.name()),
                );
            }
        }
    }
}

#[test]
fn recovery_at_every_boundary_preserves_commitment_all_engines() {
    const BLOCKS: u64 = 6;
    for kind in all_engines() {
        for crash_at in 1..=BLOCKS {
            let mut f = fixture(kind, Mix::Smallbank, 2);
            let mut rng = DetRng::new(0xC4A5);
            for b in 1..=BLOCKS {
                let txns = f.workload.next_block(&mut rng, 10);
                f.chain.submit_block(txns, f.codec.as_ref()).unwrap();
                if b == crash_at {
                    let before = f.chain.state_root().unwrap();
                    f.chain.crash_and_recover(f.codec.as_ref()).unwrap();
                    assert_eq!(f.chain.height(), BlockId(b), "recovery lost height");
                    assert_eq!(
                        f.chain.state_root().unwrap(),
                        before,
                        "{}: root changed across crash at block {b}",
                        kind.name()
                    );
                }
            }
            assert_root_matches_oracle(
                &f.chain,
                &format!("{} after crash at {crash_at}", kind.name()),
            );
        }
    }
}

#[test]
fn snapshot_install_rebuilds_matching_commitment() {
    // Peer runs 5 blocks and exports a manifest; a fresh joiner installs
    // it. The joiner's rebuilt commitment must equal both the oracle over
    // its own engine and the peer's incremental root — and stay equal
    // while both execute further identical blocks.
    let kind = EngineKind::Aria;
    let mut f = fixture(kind, Mix::Ycsb, 3);
    let mut rng = DetRng::new(0x1057);
    for _ in 0..5 {
        let txns = f.workload.next_block(&mut rng, 12);
        f.chain.submit_block(txns, f.codec.as_ref()).unwrap();
    }
    let snap = f.chain.export_snapshot().unwrap();

    // Same engine kind as the peer: replicas replaying identical blocks
    // must run identical protocols to commit identical txn subsets.
    let mut joiner = OeChain::open_with_factory(
        ChainConfig {
            checkpoint_every: 3,
            ..ChainConfig::in_memory()
        },
        Arc::new(move |store, next, summary| kind.build_at(store, 2, next, summary)),
    )
    .unwrap();
    joiner
        .install_snapshot(&StateSnapshot::decode(&snap.encode()).unwrap())
        .unwrap();
    assert_root_matches_oracle(&joiner, "joiner after install");
    assert_eq!(
        joiner.state_root().unwrap(),
        f.chain.state_root().unwrap(),
        "install must reproduce the peer's commitment root"
    );

    for b in 0..4 {
        let txns = f.workload.next_block(&mut rng, 12);
        let (sealed, _) = f.chain.submit_block(txns, f.codec.as_ref()).unwrap();
        joiner
            .apply_sealed_block(&sealed, f.codec.as_ref())
            .unwrap();
        assert_root_matches_oracle(&joiner, &format!("joiner post-install block {b}"));
        assert_eq!(joiner.state_root().unwrap(), f.chain.state_root().unwrap());
    }
}

#[test]
fn row_proofs_verify_against_committed_state_root() {
    let mut f = fixture(EngineKind::Rbc, Mix::Ycsb, 4);
    let mut rng = DetRng::new(0xF00F);
    for _ in 0..4 {
        let txns = f.workload.next_block(&mut rng, 10);
        f.chain.submit_block(txns, f.codec.as_ref()).unwrap();
    }
    let root = f.chain.state_root().unwrap();
    let (name, table) = f.chain.engine().list_tables()[0].clone();
    let rows = f
        .chain
        .engine()
        .scan_collect(table, b"", None, usize::MAX)
        .unwrap();
    assert!(!rows.is_empty());
    for item in rows.iter().take(8) {
        let (proof, heads) = f
            .chain
            .prove_row(table, &item.key)
            .unwrap()
            .expect("present row must prove");
        // The proof checks against its table head, and the heads fold to
        // the chain's state root — the full light-client chain of custody.
        let head = heads
            .iter()
            .find(|(n, _)| n == &name)
            .expect("proved table missing from heads")
            .1;
        assert!(AuthMap::verify(&head, &item.key, &item.value, &proof));
        assert!(!AuthMap::verify(&head, &item.key, b"forged-value", &proof));
        assert_eq!(fold_table_roots(&heads), root);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized workloads, engines, checkpoint periods, and crash
    /// points: the incremental root always equals the full-scan oracle,
    /// including immediately after recovery.
    #[test]
    fn random_workloads_keep_incremental_root_equal_to_oracle(
        seed in 0u64..1_000,
        engine_idx in 0usize..5,
        mix_sel in 0u8..2,
        checkpoint_every in 1u64..5,
        crash_at in 1u64..7,
        block_size in 6usize..16,
    ) {
        let kind = all_engines()[engine_idx];
        let mix = if mix_sel == 0 { Mix::Smallbank } else { Mix::Ycsb };
        let mut f = fixture(kind, mix, checkpoint_every);
        let mut rng = DetRng::new(seed);
        for b in 1..=6u64 {
            let txns = f.workload.next_block(&mut rng, block_size);
            f.chain.submit_block(txns, f.codec.as_ref()).unwrap();
            if b == crash_at {
                f.chain.crash_and_recover(f.codec.as_ref()).unwrap();
            }
            let incremental = f.chain.state_root().unwrap();
            let oracle = state_root(f.chain.engine()).unwrap();
            prop_assert_eq!(
                incremental,
                oracle,
                "{} ({:?}, p={}) diverged at block {} (crash at {})",
                kind.name(),
                mix,
                checkpoint_every,
                b,
                crash_at
            );
        }
    }
}
