//! End-to-end chain properties: replica consistency, crash recovery
//! (logical replay for OE, value replay for SOV), and tamper detection.

use std::sync::Arc;

use harmony_chain::{ChainConfig, OeChain, SovChain};
use harmony_common::{BlockId, DetRng};
use harmony_core::HarmonyConfig;
use harmony_dcc_baselines::FabricConfig;
use harmony_workloads::{
    Smallbank, SmallbankCodec, SmallbankConfig, Workload, Ycsb, YcsbCodec, YcsbConfig,
};

fn ycsb_chain(seed_tag: u64, harmony: HarmonyConfig) -> (OeChain, Ycsb, YcsbCodec, DetRng) {
    let config = ChainConfig {
        harmony,
        checkpoint_every: 5,
        ..ChainConfig::in_memory()
    };
    let chain = OeChain::in_memory(config).unwrap();
    let mut workload = Ycsb::new(YcsbConfig {
        keys: 400,
        theta: 0.8,
        ..YcsbConfig::default()
    });
    workload.setup(chain.engine()).unwrap();
    let codec = YcsbCodec {
        table: workload.table(),
    };
    (chain, workload, codec, DetRng::new(0xC0FFEE ^ seed_tag))
}

#[test]
fn replica_consistency_across_worker_counts() {
    // Two replicas with different parallelism degrees fed identical blocks
    // must converge to identical state roots and block hashes.
    let run = |workers: usize| {
        let (mut chain, workload, codec, mut rng) = ycsb_chain(
            1,
            HarmonyConfig {
                workers,
                ..HarmonyConfig::default()
            },
        );
        for _ in 0..12 {
            let txns = workload.next_block(&mut rng, 20);
            chain.submit_block(txns, &codec).unwrap();
        }
        (chain.state_root().unwrap(), chain.last_hash())
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.0, b.0, "state roots diverged");
    assert_eq!(a.1, b.1, "chain hashes diverged");
}

#[test]
fn oe_recovery_replays_to_identical_state() {
    let (mut crashing, workload, codec, mut rng) = ycsb_chain(2, HarmonyConfig::default());
    let (mut witness, _, codec_w, mut rng_w) = ycsb_chain(2, HarmonyConfig::default());
    // Same transaction stream to both replicas.
    for _ in 0..13 {
        let txns = workload.next_block(&mut rng, 15);
        let txns_w = workload.next_block(&mut rng_w, 15);
        crashing.submit_block(txns, &codec).unwrap();
        witness.submit_block(txns_w, &codec_w).unwrap();
    }
    assert_eq!(crashing.height(), BlockId(13));
    let pre_crash_root = crashing.state_root().unwrap();
    assert_eq!(pre_crash_root, witness.state_root().unwrap());

    // Crash after block 13 (last checkpoint at block 10) and recover by
    // deterministic replay.
    crashing.crash_and_recover(&codec).unwrap();
    assert_eq!(crashing.height(), BlockId(13));
    assert_eq!(
        crashing.state_root().unwrap(),
        pre_crash_root,
        "logical replay must reproduce the exact pre-crash state"
    );
    assert_eq!(crashing.last_hash(), witness.last_hash());

    // The chain keeps working after recovery and stays consistent.
    for _ in 0..3 {
        let txns = workload.next_block(&mut rng, 15);
        let txns_w = workload.next_block(&mut rng_w, 15);
        crashing.submit_block(txns, &codec).unwrap();
        witness.submit_block(txns_w, &codec_w).unwrap();
    }
    assert_eq!(
        crashing.state_root().unwrap(),
        witness.state_root().unwrap()
    );
}

#[test]
fn oe_recovery_without_any_checkpoint() {
    let config = ChainConfig {
        checkpoint_every: 1_000, // never reached
        ..ChainConfig::in_memory()
    };
    let mut chain = OeChain::in_memory(config).unwrap();
    let mut workload = Ycsb::new(YcsbConfig {
        keys: 100,
        ..YcsbConfig::default()
    });
    workload.setup(chain.engine()).unwrap();
    let codec = YcsbCodec {
        table: workload.table(),
    };
    let mut rng = DetRng::new(3);
    for _ in 0..4 {
        chain
            .submit_block(workload.next_block(&mut rng, 10), &codec)
            .unwrap();
    }
    let root = chain.state_root().unwrap();
    chain.crash_and_recover(&codec).unwrap();
    // Without a checkpoint the initial load is gone, so there is no base
    // state to replay onto: recovery must honestly report total local
    // loss (height 0, empty catalog, no bogus replay) — the node is now
    // a state-sync bootstrap candidate.
    assert_eq!(chain.height(), BlockId(0), "no checkpoint ⇒ total loss");
    assert!(
        chain.engine().list_tables().is_empty(),
        "no tables must survive a checkpoint-less crash"
    );
    // A replica with the genesis state can still reproduce the chain:
    let mut fresh = OeChain::in_memory(ChainConfig {
        checkpoint_every: 1_000,
        ..ChainConfig::in_memory()
    })
    .unwrap();
    let mut w2 = Ycsb::new(YcsbConfig {
        keys: 100,
        ..YcsbConfig::default()
    });
    w2.setup(fresh.engine()).unwrap();
    let mut rng2 = DetRng::new(3);
    for _ in 0..4 {
        fresh
            .submit_block(w2.next_block(&mut rng2, 10), &codec)
            .unwrap();
    }
    assert_eq!(fresh.state_root().unwrap(), root);
}

#[test]
fn tampered_block_log_detected() {
    use harmony_txn::ContractCodec;
    let (mut chain, workload, codec, mut rng) = ycsb_chain(4, HarmonyConfig::default());
    for _ in 0..3 {
        chain
            .submit_block(workload.next_block(&mut rng, 5), &codec)
            .unwrap();
    }
    chain.verify_chain().unwrap();

    // Tamper: decode block 2 from the log, alter a transaction, re-encode
    // — verification must reject it because the Merkle root breaks.
    let blocks = chain.verify_chain().unwrap();
    let mut tampered = blocks[1].clone();
    tampered.txns[0] = codec
        .encode(harmony_workloads::ycsb::build_txn(workload.table(), vec![(0, 1, 999)]).as_ref());
    let prev = blocks[0].header.hash();
    let verifier =
        harmony_crypto::Verifier::new(b"harmonybc-cluster", harmony_crypto::CryptoCost::free());
    assert!(tampered.verify(&prev, &verifier).is_err());
}

#[test]
fn smallbank_conservation_across_recovery() {
    let config = ChainConfig {
        checkpoint_every: 4,
        ..ChainConfig::in_memory()
    };
    let mut chain = OeChain::in_memory(config).unwrap();
    let mut workload = Smallbank::new(SmallbankConfig {
        accounts: 200,
        theta: 0.9,
        ..SmallbankConfig::default()
    });
    workload.setup(chain.engine()).unwrap();
    let (checking, savings) = workload.tables();
    let codec = SmallbankCodec { checking, savings };
    let mut rng = DetRng::new(5);
    for _ in 0..9 {
        chain
            .submit_block(workload.next_block(&mut rng, 25), &codec)
            .unwrap();
    }
    let root = chain.state_root().unwrap();
    chain.crash_and_recover(&codec).unwrap();
    assert_eq!(chain.state_root().unwrap(), root);
}

#[test]
fn sov_chain_recovers_by_value_replay() {
    let mut chain = SovChain::in_memory(
        FabricConfig {
            workers: 4,
            ..FabricConfig::default()
        },
        4,
    )
    .unwrap();
    let mut workload = Ycsb::new(YcsbConfig {
        keys: 300,
        theta: 0.5,
        ..YcsbConfig::default()
    });
    workload.setup(chain.engine()).unwrap();
    let codec = YcsbCodec {
        table: workload.table(),
    };
    let mut rng = DetRng::new(6);
    let mut committed = 0usize;
    for _ in 0..10 {
        let (_, res) = chain
            .submit_block(workload.next_block(&mut rng, 12), &codec)
            .unwrap();
        committed += res.stats.committed;
    }
    assert!(committed > 0);
    let root = chain.state_root().unwrap();
    chain.crash_and_recover().unwrap();
    assert_eq!(chain.height(), BlockId(10));
    assert_eq!(
        chain.state_root().unwrap(),
        root,
        "WAL value replay must reproduce the pre-crash state"
    );
    chain.verify_chain().unwrap();
}

#[test]
fn aria_as_chain_engine() {
    use harmony_dcc_baselines::{Aria, AriaConfig};
    let config = ChainConfig::in_memory();
    let chain = OeChain::in_memory(config).unwrap();
    let mut workload = Ycsb::new(YcsbConfig {
        keys: 200,
        ..YcsbConfig::default()
    });
    workload.setup(chain.engine()).unwrap();
    let codec = YcsbCodec {
        table: workload.table(),
    };
    let snapshots = Arc::clone(chain.snapshots());
    let mut chain = chain.with_dcc(Arc::new(Aria::new(snapshots, AriaConfig::default())));
    let mut rng = DetRng::new(7);
    let (_, res) = chain
        .submit_block(workload.next_block(&mut rng, 10), &codec)
        .unwrap();
    assert!(res.stats.committed > 0, "AriaBC runs on the same framework");
}
