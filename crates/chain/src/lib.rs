//! HarmonyBC — the private blockchain assembled from the substrates (§4 of
//! the paper).
//!
//! * [`block`] — hash-chained blocks: headers with previous-hash and a
//!   Merkle root over transaction payloads, sealed/signed by the ordering
//!   service, verified by replicas (tamper evidence).
//! * [`oe`] — [`OeChain`]: the Order-Execute chain. Blocks are logically
//!   logged *before* execution, executed by any [`DccEngine`] (Harmony by
//!   default — that is HarmonyBC; Aria gives AriaBC, etc.), checkpointed
//!   every `p` blocks, and recoverable by deterministic replay.
//! * [`sov`] — [`SovChain`]: the Simulate-Order-Validate chain (Fabric
//!   family) with *physical* write-set logging and value replay on
//!   recovery.
//! * [`sync`] — [`sync::StateSnapshot`]: the transferable checkpoint
//!   manifest behind state-sync catch-up (manifest install + block-range
//!   replay).
//!
//! Replica consistency is checked with [`oe::state_root`]: equal inputs ⇒
//! equal roots on every replica, whatever the thread counts.

pub mod block;
pub mod commit;
pub mod oe;
pub mod sov;
pub mod sync;

pub use block::{BlockHeader, ChainBlock};
pub use commit::{fold_table_roots, StateCommitment};
pub use oe::{
    sharded_state_root, state_root, BlockUndo, ChainConfig, DccFactory, OeChain, RowProof,
};
pub use sov::SovChain;
pub use sync::{StateSnapshot, TableDump};
