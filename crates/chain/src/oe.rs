//! The Order-Execute chain — HarmonyBC when driven by the Harmony engine.
//!
//! Flow per block (§4 of the paper):
//!
//! 1. Seal the block (hash-chain + Merkle root + orderer MAC).
//! 2. **Logical logging**: persist the sealed input block *before*
//!    execution — determinism makes replay sufficient for recovery.
//! 3. Execute through the plugged [`DccEngine`].
//! 4. Every `p` blocks: checkpoint (flush dirty pages, write the manifest,
//!    and persist the *recovery sidecar*: the last block's undo images and
//!    Rule-3 summary, so replay under inter-block parallelism reproduces
//!    the original snapshots and aborts bit-for-bit).
//!
//! Recovery loads the newest checkpoint, verifies the hash chain of the
//! persisted blocks, and re-executes everything after the checkpoint.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use harmony_common::codec::{Reader, Writer};
use harmony_common::{BlockId, Error, Result};
use harmony_core::executor::{BlockSummary, ExecBlock, WriterInfo};
use harmony_core::{HarmonyConfig, SnapshotStore};
use harmony_crypto::{CryptoCost, Digest, KeyPair, MapProof, MerkleTree, Verifier};
use harmony_dcc_baselines::{DccEngine, HarmonyEngine, ProtocolBlockResult};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::{Contract, ContractCodec, Key, RangePredicate, Value};

use crate::block::ChainBlock;
use crate::commit::StateCommitment;

/// Chain configuration.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Storage engine configuration.
    pub storage: StorageConfig,
    /// Harmony DCC configuration.
    pub harmony: HarmonyConfig,
    /// Checkpoint period `p` in blocks (paper example: 10).
    pub checkpoint_every: u64,
    /// How many trailing blocks' before-images (and version-history
    /// entries) the recovery sidecar captures. Must cover the engine's
    /// farthest-back snapshot read: 2 suffices for Harmony's inter-block
    /// parallelism; the SOV engines endorse against snapshots up to
    /// `validation_delay + max_lag` blocks old, so the default of 4
    /// covers their default profile too.
    pub sidecar_depth: u64,
    /// Cluster provisioning secret (node authentication).
    pub provision: Vec<u8>,
    /// This orderer's identity.
    pub orderer_id: u64,
    /// Crypto cost model.
    pub crypto: CryptoCost,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            storage: StorageConfig::default(),
            harmony: HarmonyConfig::default(),
            checkpoint_every: 10,
            sidecar_depth: 4,
            provision: b"harmonybc-cluster".to_vec(),
            orderer_id: 0,
            crypto: CryptoCost::default(),
        }
    }
}

impl ChainConfig {
    /// All-in-memory, zero-latency configuration for tests/examples.
    #[must_use]
    pub fn in_memory() -> ChainConfig {
        ChainConfig {
            storage: StorageConfig::memory(),
            crypto: CryptoCost::free(),
            ..ChainConfig::default()
        }
    }
}

/// Hash of the full database state — replicas fed the same blocks must
/// produce identical roots (replica consistency).
///
/// This is the **audit oracle**: it rebuilds the authenticated commitment
/// from a full scan of every table (names length-prefixed in the top-level
/// fold, rows committed through per-table [`harmony_crypto::AuthMap`]s).
/// A live [`OeChain`] never pays this scan on the hot path — its
/// [`OeChain::state_root`] returns the incrementally maintained root, which
/// history independence guarantees equals this oracle bit for bit.
pub fn state_root(engine: &StorageEngine) -> Result<Digest> {
    Ok(StateCommitment::build(engine)?.root())
}

/// Fold per-shard state roots into one tamper-evident top-level root.
///
/// Under sharded execution each shard maintains its own partition of the
/// database, so the replica-consistency digest becomes two-level: a state
/// root per shard (ordered by shard index), folded through a Merkle tree.
/// Any single-shard divergence changes the top root, and a light client can
/// still check one shard's state against the chain with a `log₂(shards)`
/// inclusion proof.
#[must_use]
pub fn sharded_state_root(shard_roots: &[Digest]) -> Digest {
    let leaves: Vec<[u8; 32]> = shard_roots.iter().map(|d| d.0).collect();
    MerkleTree::build(&leaves).root()
}

/// Factory rebuilding the DCC engine over a snapshot store, positioned at
/// `next_block` with the previous block's Rule-3 summary (Harmony only;
/// other engines ignore it). [`OeChain`] calls it on open, crash recovery,
/// and state-snapshot install, so a chain running any of the five engines
/// recovers onto the *same* engine kind.
pub type DccFactory = Arc<
    dyn Fn(Arc<SnapshotStore>, BlockId, Option<BlockSummary>) -> Arc<dyn DccEngine> + Send + Sync,
>;

/// A row inclusion proof plus the `(table name, table root)` heads that
/// fold to the state root — what [`OeChain::prove_row`] hands a light
/// client.
pub type RowProof = (MapProof, Vec<(String, Digest)>);

/// An Order-Execute private blockchain node.
pub struct OeChain {
    config: ChainConfig,
    engine: Arc<StorageEngine>,
    snapshots: Arc<SnapshotStore>,
    dcc: Arc<dyn DccEngine>,
    factory: DccFactory,
    keypair: KeyPair,
    verifier: Verifier,
    height: BlockId,
    last_hash: Digest,
    last_summary: Option<BlockSummary>,
    /// Incrementally maintained authenticated state commitment. `None`
    /// until the first root is needed (genesis workload loading writes to
    /// the engine directly, so an eager build at open would go stale);
    /// once built, every applied block folds its write-set in and
    /// [`OeChain::state_root`] is O(1).
    commitment: Mutex<Option<StateCommitment>>,
    /// Earliest state this node holds locally: `(height, hash)` of the
    /// block its history starts after. `(0, ZERO)` for a genesis-born
    /// node; the snapshot point for a node bootstrapped via state-sync
    /// (its block log only holds blocks *after* the base).
    base: (BlockId, Digest),
}

impl OeChain {
    /// Fresh in-memory HarmonyBC node (Harmony DCC).
    pub fn in_memory(config: ChainConfig) -> Result<OeChain> {
        OeChain::open(config)
    }

    /// Open a node, recovering from the latest checkpoint if one exists.
    /// For recovery with re-execution use [`OeChain::crash_and_recover`].
    pub fn open(config: ChainConfig) -> Result<OeChain> {
        let harmony = config.harmony;
        OeChain::open_with_factory(
            config,
            Arc::new(move |store, next, summary| {
                Arc::new(HarmonyEngine::starting_at(store, harmony, next, summary))
            }),
        )
    }

    /// Open a node whose DCC engine (and its recovery re-instantiation)
    /// comes from `factory` — AriaBC, RBC, or the SOV engines on the same
    /// chain framework, as the paper does.
    pub fn open_with_factory(config: ChainConfig, factory: DccFactory) -> Result<OeChain> {
        let engine = Arc::new(StorageEngine::open(&config.storage)?);
        let snapshots = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
        let dcc = factory(Arc::clone(&snapshots), BlockId(1), None);
        let keypair = KeyPair::derive(&config.provision, config.orderer_id, config.crypto);
        let verifier = Verifier::new(&config.provision, config.crypto);
        Ok(OeChain {
            config,
            engine,
            snapshots,
            dcc,
            factory,
            keypair,
            verifier,
            height: BlockId(0),
            last_hash: Digest::ZERO,
            last_summary: None,
            commitment: Mutex::new(None),
            base: (BlockId(0), Digest::ZERO),
        })
    }

    /// Replace the DCC engine (build AriaBC / RBC on the same chain
    /// framework, as the paper does). Must be called before any block.
    /// Crash recovery still rebuilds through the configured factory — use
    /// [`OeChain::open_with_factory`] when the node must recover onto the
    /// same engine kind.
    pub fn with_dcc(mut self, dcc: Arc<dyn DccEngine>) -> OeChain {
        assert_eq!(self.height, BlockId(0), "cannot swap DCC mid-chain");
        self.dcc = dcc;
        self
    }

    /// The storage engine (for workload setup / inspection).
    #[must_use]
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    /// The snapshot store.
    #[must_use]
    pub fn snapshots(&self) -> &Arc<SnapshotStore> {
        &self.snapshots
    }

    /// The active DCC engine.
    #[must_use]
    pub fn dcc(&self) -> &Arc<dyn DccEngine> {
        &self.dcc
    }

    /// Current chain height.
    #[must_use]
    pub fn height(&self) -> BlockId {
        self.height
    }

    /// Hash of the latest block.
    #[must_use]
    pub fn last_hash(&self) -> Digest {
        self.last_hash
    }

    /// `(height, hash)` of the block this node's local history starts
    /// after — non-zero on a replica bootstrapped by state-sync.
    #[must_use]
    pub fn base(&self) -> (BlockId, Digest) {
        self.base
    }

    /// The Rule-3 summary of the last executed block (Harmony only).
    #[must_use]
    pub fn last_summary(&self) -> Option<&BlockSummary> {
        self.last_summary.as_ref()
    }

    /// The chain's active configuration.
    #[must_use]
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Seal the next block of transactions — what the ordering service
    /// does before delivery. Does not execute.
    #[must_use]
    pub fn seal_block(&self, txns: &[Arc<dyn Contract>], codec: &dyn ContractCodec) -> ChainBlock {
        let encoded: Vec<Vec<u8>> = txns.iter().map(|t| codec.encode(t.as_ref())).collect();
        ChainBlock::seal(self.height.next(), self.last_hash, encoded, &self.keypair)
    }

    /// Submit the next block of transactions: seal, log, execute — the
    /// single-node path where orderer and replica are the same process.
    pub fn submit_block(
        &mut self,
        txns: Vec<Arc<dyn Contract>>,
        codec: &dyn ContractCodec,
    ) -> Result<(ChainBlock, ProtocolBlockResult)> {
        let sealed = self.seal_block(&txns, codec);
        let result = self.apply_block_inner(&sealed, txns)?;
        Ok((sealed, result))
    }

    /// Consume a sealed block delivered by an ordering service: verify its
    /// linkage and signature, log it, decode the payloads through `codec`,
    /// and execute — the replica-side half of the Order-Execute loop.
    pub fn apply_sealed_block(
        &mut self,
        sealed: &ChainBlock,
        codec: &dyn ContractCodec,
    ) -> Result<ProtocolBlockResult> {
        let txns: Result<Vec<Arc<dyn Contract>>> =
            sealed.txns.iter().map(|b| codec.decode(b)).collect();
        self.apply_block_inner(sealed, txns?)
    }

    /// Shared seal-consumption path: verify, log before execution, execute,
    /// advance, checkpoint on period.
    fn apply_block_inner(
        &mut self,
        sealed: &ChainBlock,
        txns: Vec<Arc<dyn Contract>>,
    ) -> Result<ProtocolBlockResult> {
        let id = sealed.header.id;
        if id != self.height.next() {
            return Err(Error::InvalidArgument(format!(
                "block {id} delivered out of order (expected {})",
                self.height.next()
            )));
        }
        sealed.verify(&self.last_hash, &self.verifier)?;
        // Logical logging: persist the input block before execution.
        self.engine.block_log().append(&sealed.encode())?;
        self.engine.block_log().sync()?;

        let result = self.dcc.execute_block(&ExecBlock { id, txns })?;
        self.fold_commitment(id)?;
        self.height = id;
        self.last_hash = sealed.header.hash();
        self.last_summary = result.summary.clone();

        if id.0.is_multiple_of(self.config.checkpoint_every) {
            self.checkpoint()?;
        }
        Ok(result)
    }

    /// Fold block `id`'s write-set into the commitment (if one is built).
    /// Must run during apply of `id` itself: the per-shard block logs that
    /// record the write-set are GC'd once the *next* block executes.
    fn fold_commitment(&self, id: BlockId) -> Result<()> {
        let mut guard = self.commitment.lock().expect("commitment lock");
        if let Some(c) = guard.as_mut() {
            c.apply_writes(&self.engine, &self.snapshots.keys_written_in(id))?;
        }
        Ok(())
    }

    /// Replay a verified range of sealed blocks in order — the catch-up
    /// path of state-sync. Blocks at or below the current height are
    /// skipped (idempotent), so a peer's full suffix can be handed over
    /// as-is. Returns the number of blocks actually applied.
    pub fn replay_range(
        &mut self,
        blocks: &[ChainBlock],
        codec: &dyn ContractCodec,
    ) -> Result<usize> {
        let mut applied = 0;
        for block in blocks {
            if block.header.id <= self.height {
                continue;
            }
            self.apply_sealed_block(block, codec)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Force a checkpoint now. Also the point where the commitment is
    /// first materialized: a checkpointed chain always records its state
    /// root in the sidecar, so recovery can verify the rebuilt state.
    pub fn checkpoint(&mut self) -> Result<()> {
        let root = self.state_root()?;
        self.engine.checkpoint(self.height)?;
        // Recovery sidecar: chain position + the trailing blocks' undo
        // images / version history + Rule-3 summary + state root.
        let undo = export_recent_undo(&self.snapshots, self.height, self.config.sidecar_depth);
        let sidecar = encode_sidecar(
            self.height,
            &self.last_hash,
            &undo,
            self.last_summary.as_ref(),
            Some(&root),
        );
        self.engine.wal().append(&sidecar)?;
        self.engine.wal().sync()?;
        Ok(())
    }

    /// Hash of the full database state — the cached root of the
    /// incrementally maintained commitment. O(1) on a warm chain; the
    /// first call (or the first after recovery reset) pays one full scan
    /// to build the per-table maps. Bit-identical to the full-scan oracle
    /// [`state_root`].
    pub fn state_root(&self) -> Result<Digest> {
        let mut guard = self.commitment.lock().expect("commitment lock");
        if guard.is_none() {
            *guard = Some(StateCommitment::build(&self.engine)?);
        }
        Ok(guard.as_mut().expect("just built").root())
    }

    /// True when the commitment is already materialized, i.e. the next
    /// [`OeChain::state_root`] is O(1). Callers folding many shards use
    /// this to decide whether building is worth parallelizing.
    #[must_use]
    pub fn root_is_cached(&self) -> bool {
        self.commitment.lock().expect("commitment lock").is_some()
    }

    /// Inclusion proof for one row against the current commitment, plus
    /// the `(table name, table root)` heads tying it to the state root —
    /// the light-client query surface. Returns `None` if the row is
    /// absent.
    pub fn prove_row(
        &self,
        table: harmony_common::ids::TableId,
        row: &[u8],
    ) -> Result<Option<RowProof>> {
        self.state_root()?; // ensure the commitment is built
        let guard = self.commitment.lock().expect("commitment lock");
        let c = guard.as_ref().expect("built above");
        Ok(c.prove_row(table, row).map(|p| (p, c.table_heads())))
    }

    /// Verify the persisted chain: decode every logged block and walk the
    /// hash chain from this node's base, checking Merkle roots and orderer
    /// signatures.
    pub fn verify_chain(&self) -> Result<Vec<ChainBlock>> {
        let records = self.engine.block_log().read_all()?;
        let mut prev = self.base.1;
        let mut next_id = self.base.0.next();
        let mut blocks = Vec::with_capacity(records.len());
        for rec in &records {
            let block = ChainBlock::decode(rec)?;
            if block.header.id != next_id {
                return Err(Error::Corruption(format!(
                    "block log gap: found {} expected {next_id}",
                    block.header.id
                )));
            }
            block.verify(&prev, &self.verifier)?;
            prev = block.header.hash();
            next_id = next_id.next();
            blocks.push(block);
        }
        Ok(blocks)
    }

    /// Verified blocks strictly after `from` — what a replica serves to a
    /// lagging peer replaying a range.
    pub fn blocks_after(&self, from: BlockId) -> Result<Vec<ChainBlock>> {
        let mut blocks = self.verify_chain()?;
        blocks.retain(|b| b.header.id > from);
        Ok(blocks)
    }

    /// Crash this node (drop caches and unsynced state) and recover:
    /// reload the checkpoint, then deterministically re-execute every
    /// logged block after it. The DCC engine is rebuilt through the
    /// configured factory, so AriaBC/RBC/Fabric chains recover onto their
    /// own engine kind.
    ///
    /// A node that never checkpointed has lost its entire database (the
    /// genesis load included), so there is no base state to replay onto:
    /// recovery honestly lands back at this node's base height with an
    /// empty catalog, ready for a state-sync bootstrap — it must NOT
    /// replay logged blocks onto the wiped state and claim success.
    pub fn crash_and_recover(&mut self, codec: &dyn ContractCodec) -> Result<()> {
        self.engine.crash_and_recover()?;
        let checkpoint = self.engine.last_checkpoint();

        // Rebuild the snapshot overlay and Rule-3 state from the sidecar.
        self.snapshots = Arc::new(SnapshotStore::new(Arc::clone(&self.engine)));
        self.last_summary = None;
        *self.commitment.lock().expect("commitment lock") = None;
        let Some(checkpoint) = checkpoint else {
            // Total loss: no manifest survived the crash, so the catalog
            // (genesis load included) is gone. Drop the stale block log —
            // its blocks are unreplayable without base state — and reset
            // to an empty genesis, ready for a state-sync bootstrap.
            self.engine.block_log().truncate()?;
            self.base = (BlockId(0), Digest::ZERO);
            self.height = BlockId(0);
            self.last_hash = Digest::ZERO;
            self.dcc = (self.factory)(Arc::clone(&self.snapshots), BlockId(1), None);
            return Ok(());
        };
        let mut checkpoint_hash = None;
        let mut checkpoint_root = None;
        if checkpoint.0 > 0 {
            let sidecars = self.engine.wal().read_all()?;
            let latest = sidecars.iter().rev().find_map(|s| {
                decode_sidecar(s)
                    .ok()
                    .filter(|(b, _, _, _, _)| *b == checkpoint)
            });
            if let Some((_, hash, undo, summary, root)) = latest {
                import_recent_undo(&self.snapshots, &undo);
                self.last_summary = summary;
                checkpoint_hash = Some(hash);
                checkpoint_root = root;
            }
        }

        // Rebuild the state commitment over the recovered checkpoint state
        // and verify it against the root the sidecar recorded: a mismatch
        // means the recovered pages do not hold the state the checkpoint
        // committed to.
        let mut commitment = StateCommitment::build(&self.engine)?;
        if let Some(expected) = checkpoint_root {
            let rebuilt = commitment.root();
            if rebuilt != expected {
                return Err(Error::Corruption(format!(
                    "recovered state root {} != checkpointed {}",
                    rebuilt.to_hex(),
                    expected.to_hex()
                )));
            }
        }
        *self.commitment.lock().expect("commitment lock") = Some(commitment);

        // Re-create the DCC engine positioned after the checkpoint.
        self.dcc = (self.factory)(
            Arc::clone(&self.snapshots),
            checkpoint.next(),
            self.last_summary.clone(),
        );

        // Verify and replay the logged blocks after the checkpoint.
        let blocks = self.verify_chain()?;
        self.height = checkpoint;
        self.last_hash = checkpoint_hash.unwrap_or_else(|| {
            blocks
                .iter()
                .rfind(|b| b.header.id <= checkpoint)
                .map_or(self.base.1, |b| b.header.hash())
        });
        for block in &blocks {
            if block.header.id <= checkpoint {
                continue;
            }
            let txns: Result<Vec<Arc<dyn Contract>>> =
                block.txns.iter().map(|b| codec.decode(b)).collect();
            let result = self.dcc.execute_block(&ExecBlock {
                id: block.header.id,
                txns: txns?,
            })?;
            self.fold_commitment(block.header.id)?;
            self.height = block.header.id;
            self.last_hash = block.header.hash();
            self.last_summary = result.summary.clone();
        }
        Ok(())
    }

    /// Install a state snapshot exported by a peer at some height — the
    /// manifest-transfer half of state-sync. Only valid on a fresh node:
    /// height 0 *and* an empty catalog (installing over pre-loaded
    /// genesis rows would silently merge, keeping local rows the peer
    /// deleted). Afterwards the node continues from `snapshot.height` and
    /// its local history starts there.
    pub fn install_snapshot(&mut self, snapshot: &crate::sync::StateSnapshot) -> Result<()> {
        if self.height != BlockId(0) {
            return Err(Error::InvalidArgument(format!(
                "snapshot install requires a fresh node (height {})",
                self.height
            )));
        }
        if !self.engine.list_tables().is_empty() {
            return Err(Error::InvalidArgument(
                "snapshot install requires an empty database (local tables exist)".into(),
            ));
        }
        // Drop any stale local history (a crashed, checkpoint-less node
        // may hold logged blocks it can no longer replay): after install,
        // this node's chain starts at the snapshot point.
        self.engine.block_log().truncate()?;
        for table in &snapshot.tables {
            let id = self.engine.create_table(&table.name)?;
            for (key, value) in &table.rows {
                self.engine.put(id, key, value)?;
            }
        }
        self.height = snapshot.height;
        self.last_hash = snapshot.last_hash;
        self.base = (snapshot.height, snapshot.last_hash);
        self.last_summary = snapshot.summary.clone();
        // The trailing checkpoint() rebuilds the commitment over the
        // installed tables (and records its root in the sidecar).
        *self.commitment.lock().expect("commitment lock") = None;
        import_recent_undo(&self.snapshots, &snapshot.undo);
        self.dcc = (self.factory)(
            Arc::clone(&self.snapshots),
            self.height.next(),
            self.last_summary.clone(),
        );
        // Persist: the install point becomes this node's first checkpoint,
        // so a later crash recovers from here rather than from genesis.
        self.checkpoint()
    }

    /// Export this node's full state at its current height for a lagging
    /// peer — the manifest the state-sync protocol transfers.
    pub fn export_snapshot(&self) -> Result<crate::sync::StateSnapshot> {
        crate::sync::StateSnapshot::export(self)
    }
}

// ── Recovery sidecar ─────────────────────────────────────────────────────
// (key / undo / summary encoders shared with crate::sync's state snapshot)

/// Before-images (and implied version-history entries) of one block.
pub type BlockUndo = (BlockId, Vec<(Key, Option<Value>)>);

/// Export the undo images of the trailing `depth` blocks ending at
/// `height`, oldest first — what recovery needs to reconstruct the
/// snapshots and version comparisons engines read several blocks back.
pub(crate) fn export_recent_undo(
    snapshots: &SnapshotStore,
    height: BlockId,
    depth: u64,
) -> Vec<BlockUndo> {
    let lo = height.0.saturating_sub(depth.max(1) - 1).max(1);
    (lo..=height.0)
        .map(|b| (BlockId(b), snapshots.export_undo_for(BlockId(b))))
        .collect()
}

/// Re-install exported undo images, oldest block first (undo chains and
/// version lists grow strictly newer). Per-block synthetic writer TIDs
/// preserve the version-equality structure the SOV staleness checks
/// compare (same block ⇔ same version).
pub(crate) fn import_recent_undo(snapshots: &SnapshotStore, undo: &[BlockUndo]) {
    for (block, entries) in undo {
        let tid = harmony_common::TxnId::new(*block, 0).0;
        snapshots.import_undo_for(*block, entries, tid);
    }
}

pub(crate) fn put_key(w: &mut Writer, key: &Key) {
    w.put_u16(key.table().0);
    w.put_bytes(key.row());
}

pub(crate) fn get_key(r: &mut Reader<'_>) -> Result<Key> {
    let table = harmony_common::ids::TableId(r.get_u16()?);
    let row = r.get_bytes()?;
    Ok(Key::new(table, row))
}

pub(crate) fn put_undo(w: &mut Writer, undo: &[(Key, Option<Value>)]) {
    w.put_u32(u32::try_from(undo.len()).expect("undo count"));
    for (key, before) in undo {
        put_key(w, key);
        match before {
            Some(v) => {
                w.put_u8(1);
                w.put_bytes(v);
            }
            None => w.put_u8(0),
        }
    }
}

pub(crate) fn get_undo(r: &mut Reader<'_>) -> Result<Vec<(Key, Option<Value>)>> {
    let n = r.get_u32()? as usize;
    let mut undo = Vec::with_capacity(n);
    for _ in 0..n {
        let key = get_key(r)?;
        let before = match r.get_u8()? {
            0 => None,
            1 => Some(Value::from(r.get_bytes()?)),
            t => return Err(Error::Corruption(format!("bad undo tag {t}"))),
        };
        undo.push((key, before));
    }
    Ok(undo)
}

pub(crate) fn put_summary(w: &mut Writer, summary: Option<&BlockSummary>) {
    match summary {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_u64(s.block.0);
            w.put_u32(u32::try_from(s.committed_writes.len()).expect("writes"));
            let mut writes: Vec<_> = s.committed_writes.iter().collect();
            writes.sort_by(|a, b| a.0.cmp(b.0));
            for (key, info) in writes {
                put_key(w, key);
                w.put_u64(info.min_tid);
                w.put_u8(u8::from(info.backward_out));
            }
            w.put_u32(u32::try_from(s.committed_reads.len()).expect("reads"));
            let mut reads: Vec<_> = s.committed_reads.iter().collect();
            reads.sort_by(|a, b| a.0.cmp(b.0));
            for (key, tid) in reads {
                put_key(w, key);
                w.put_u64(*tid);
            }
            w.put_u32(u32::try_from(s.committed_read_preds.len()).expect("preds"));
            for (tid, pred) in &s.committed_read_preds {
                w.put_u64(*tid);
                w.put_u16(pred.table.0);
                w.put_bytes(&pred.start);
                match &pred.end {
                    Some(e) => {
                        w.put_u8(1);
                        w.put_bytes(e);
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }
}

pub(crate) fn get_summary(r: &mut Reader<'_>) -> Result<Option<BlockSummary>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => {
            let sblock = BlockId(r.get_u64()?);
            let mut committed_writes = HashMap::new();
            for _ in 0..r.get_u32()? {
                let key = get_key(r)?;
                let min_tid = r.get_u64()?;
                let backward_out = r.get_u8()? == 1;
                committed_writes.insert(
                    key,
                    WriterInfo {
                        min_tid,
                        backward_out,
                    },
                );
            }
            let mut committed_reads = HashMap::new();
            for _ in 0..r.get_u32()? {
                let key = get_key(r)?;
                committed_reads.insert(key, r.get_u64()?);
            }
            let mut committed_read_preds = Vec::new();
            for _ in 0..r.get_u32()? {
                let tid = r.get_u64()?;
                let table = harmony_common::ids::TableId(r.get_u16()?);
                let start = bytes::Bytes::from(r.get_bytes()?);
                let end = match r.get_u8()? {
                    0 => None,
                    1 => Some(bytes::Bytes::from(r.get_bytes()?)),
                    t => return Err(Error::Corruption(format!("bad pred tag {t}"))),
                };
                committed_read_preds.push((tid, RangePredicate { table, start, end }));
            }
            Ok(Some(BlockSummary {
                block: sblock,
                committed_writes,
                committed_reads,
                committed_read_preds,
            }))
        }
        t => Err(Error::Corruption(format!("bad summary tag {t}"))),
    }
}

pub(crate) fn put_block_undo(w: &mut Writer, undo: &[BlockUndo]) {
    w.put_u32(u32::try_from(undo.len()).expect("block count"));
    for (block, entries) in undo {
        w.put_u64(block.0);
        put_undo(w, entries);
    }
}

pub(crate) fn get_block_undo(r: &mut Reader<'_>) -> Result<Vec<BlockUndo>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let block = BlockId(r.get_u64()?);
        out.push((block, get_undo(r)?));
    }
    Ok(out)
}

fn encode_sidecar(
    block: BlockId,
    last_hash: &Digest,
    undo: &[BlockUndo],
    summary: Option<&BlockSummary>,
    state_root: Option<&Digest>,
) -> Vec<u8> {
    let mut w = Writer::with_capacity(256);
    w.put_u64(block.0);
    w.put_raw(&last_hash.0);
    put_block_undo(&mut w, undo);
    put_summary(&mut w, summary);
    match state_root {
        Some(root) => {
            w.put_u8(1);
            w.put_raw(&root.0);
        }
        None => w.put_u8(0),
    }
    w.finish().to_vec()
}

type Sidecar = (
    BlockId,
    Digest,
    Vec<BlockUndo>,
    Option<BlockSummary>,
    Option<Digest>,
);

fn decode_sidecar(bytes: &[u8]) -> Result<Sidecar> {
    let mut r = Reader::new(bytes);
    let block = BlockId(r.get_u64()?);
    let last_hash = Digest(r.get_raw(32)?.try_into().expect("32 bytes"));
    let undo = get_block_undo(&mut r)?;
    let summary = get_summary(&mut r)?;
    let state_root = match r.get_u8()? {
        0 => None,
        1 => Some(Digest(r.get_raw(32)?.try_into().expect("32 bytes"))),
        t => return Err(Error::Corruption(format!("bad root tag {t}"))),
    };
    Ok((block, last_hash, undo, summary, state_root))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_roundtrip() {
        let key = Key::from_u64(harmony_common::ids::TableId(2), 9);
        let undo: Vec<(Key, Option<Value>)> = vec![
            (key.clone(), Some(Value::from_static(b"before"))),
            (Key::from_u64(harmony_common::ids::TableId(2), 10), None),
        ];
        let mut summary = BlockSummary {
            block: BlockId(7),
            ..BlockSummary::default()
        };
        summary.committed_writes.insert(
            key.clone(),
            WriterInfo {
                min_tid: 123,
                backward_out: true,
            },
        );
        summary.committed_reads.insert(key, 456);
        summary.committed_read_preds.push((
            789,
            RangePredicate {
                table: harmony_common::ids::TableId(3),
                start: bytes::Bytes::from_static(b"a"),
                end: Some(bytes::Bytes::from_static(b"z")),
            },
        ));
        let hash = Digest([9; 32]);
        let root = Digest([5; 32]);
        let undo = vec![(BlockId(6), Vec::new()), (BlockId(7), undo)];
        let enc = encode_sidecar(BlockId(7), &hash, &undo, Some(&summary), Some(&root));
        let (block, hash2, undo2, summary2, root2) = decode_sidecar(&enc).unwrap();
        assert_eq!(block, BlockId(7));
        assert_eq!(hash2, hash);
        assert_eq!(undo2, undo);
        assert_eq!(root2, Some(root));
        let s2 = summary2.unwrap();
        assert_eq!(s2.block, BlockId(7));
        assert_eq!(s2.committed_writes.len(), 1);
        assert_eq!(s2.committed_reads.len(), 1);
        assert_eq!(s2.committed_read_preds.len(), 1);
        assert!(s2.committed_writes.values().next().unwrap().backward_out);
    }

    #[test]
    fn sharded_root_detects_single_shard_divergence() {
        let roots = [Digest([1; 32]), Digest([2; 32]), Digest([3; 32])];
        let top = sharded_state_root(&roots);
        assert_eq!(top, sharded_state_root(&roots), "deterministic");
        let mut tampered = roots;
        tampered[1].0[0] ^= 1;
        assert_ne!(top, sharded_state_root(&tampered));
        // Order-sensitive: shard index is part of the commitment.
        let swapped = [roots[1], roots[0], roots[2]];
        assert_ne!(top, sharded_state_root(&swapped));
    }

    #[test]
    fn sidecar_without_summary() {
        let enc = encode_sidecar(BlockId(3), &Digest::ZERO, &[], None, None);
        let (block, hash, undo, summary, root) = decode_sidecar(&enc).unwrap();
        assert_eq!(block, BlockId(3));
        assert_eq!(hash, Digest::ZERO);
        assert!(undo.is_empty());
        assert!(summary.is_none());
        assert!(root.is_none());
    }
}
