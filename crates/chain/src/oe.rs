//! The Order-Execute chain — HarmonyBC when driven by the Harmony engine.
//!
//! Flow per block (§4 of the paper):
//!
//! 1. Seal the block (hash-chain + Merkle root + orderer MAC).
//! 2. **Logical logging**: persist the sealed input block *before*
//!    execution — determinism makes replay sufficient for recovery.
//! 3. Execute through the plugged [`DccEngine`].
//! 4. Every `p` blocks: checkpoint (flush dirty pages, write the manifest,
//!    and persist the *recovery sidecar*: the last block's undo images and
//!    Rule-3 summary, so replay under inter-block parallelism reproduces
//!    the original snapshots and aborts bit-for-bit).
//!
//! Recovery loads the newest checkpoint, verifies the hash chain of the
//! persisted blocks, and re-executes everything after the checkpoint.

use std::collections::HashMap;
use std::sync::Arc;

use harmony_common::codec::{Reader, Writer};
use harmony_common::{BlockId, Error, Result};
use harmony_core::executor::{BlockSummary, ExecBlock, WriterInfo};
use harmony_core::{HarmonyConfig, SnapshotStore};
use harmony_crypto::{CryptoCost, Digest, KeyPair, MerkleTree, Sha256, Verifier};
use harmony_dcc_baselines::{DccEngine, HarmonyEngine, ProtocolBlockResult};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::{Contract, ContractCodec, Key, RangePredicate, Value};

use crate::block::ChainBlock;

/// Chain configuration.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Storage engine configuration.
    pub storage: StorageConfig,
    /// Harmony DCC configuration.
    pub harmony: HarmonyConfig,
    /// Checkpoint period `p` in blocks (paper example: 10).
    pub checkpoint_every: u64,
    /// Cluster provisioning secret (node authentication).
    pub provision: Vec<u8>,
    /// This orderer's identity.
    pub orderer_id: u64,
    /// Crypto cost model.
    pub crypto: CryptoCost,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            storage: StorageConfig::default(),
            harmony: HarmonyConfig::default(),
            checkpoint_every: 10,
            provision: b"harmonybc-cluster".to_vec(),
            orderer_id: 0,
            crypto: CryptoCost::default(),
        }
    }
}

impl ChainConfig {
    /// All-in-memory, zero-latency configuration for tests/examples.
    #[must_use]
    pub fn in_memory() -> ChainConfig {
        ChainConfig {
            storage: StorageConfig::memory(),
            crypto: CryptoCost::free(),
            ..ChainConfig::default()
        }
    }
}

/// Hash of the full database state — replicas fed the same blocks must
/// produce identical roots (replica consistency).
pub fn state_root(engine: &StorageEngine) -> Result<Digest> {
    let mut h = Sha256::new();
    for (name, id) in engine.list_tables() {
        h.update(name.as_bytes());
        engine.scan(id, b"", None, |k, v| {
            h.update(&(k.len() as u32).to_le_bytes());
            h.update(k);
            h.update(&(v.len() as u32).to_le_bytes());
            h.update(v);
            true
        })?;
    }
    Ok(h.finalize())
}

/// Fold per-shard state roots into one tamper-evident top-level root.
///
/// Under sharded execution each shard maintains its own partition of the
/// database, so the replica-consistency digest becomes two-level: a state
/// root per shard (ordered by shard index), folded through a Merkle tree.
/// Any single-shard divergence changes the top root, and a light client can
/// still check one shard's state against the chain with a `log₂(shards)`
/// inclusion proof.
#[must_use]
pub fn sharded_state_root(shard_roots: &[Digest]) -> Digest {
    let leaves: Vec<[u8; 32]> = shard_roots.iter().map(|d| d.0).collect();
    MerkleTree::build(&leaves).root()
}

/// An Order-Execute private blockchain node.
pub struct OeChain {
    config: ChainConfig,
    engine: Arc<StorageEngine>,
    snapshots: Arc<SnapshotStore>,
    dcc: Arc<dyn DccEngine>,
    keypair: KeyPair,
    verifier: Verifier,
    height: BlockId,
    last_hash: Digest,
    last_summary: Option<BlockSummary>,
}

impl OeChain {
    /// Fresh in-memory HarmonyBC node (Harmony DCC).
    pub fn in_memory(config: ChainConfig) -> Result<OeChain> {
        OeChain::open(config)
    }

    /// Open a node, recovering from the latest checkpoint if one exists.
    /// For recovery with re-execution use [`OeChain::recover`].
    pub fn open(config: ChainConfig) -> Result<OeChain> {
        let engine = Arc::new(StorageEngine::open(&config.storage)?);
        let snapshots = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
        let dcc: Arc<dyn DccEngine> =
            Arc::new(HarmonyEngine::new(Arc::clone(&snapshots), config.harmony));
        let keypair = KeyPair::derive(&config.provision, config.orderer_id, config.crypto);
        let verifier = Verifier::new(&config.provision, config.crypto);
        Ok(OeChain {
            config,
            engine,
            snapshots,
            dcc,
            keypair,
            verifier,
            height: BlockId(0),
            last_hash: Digest::ZERO,
            last_summary: None,
        })
    }

    /// Replace the DCC engine (build AriaBC / RBC on the same chain
    /// framework, as the paper does). Must be called before any block.
    pub fn with_dcc(mut self, dcc: Arc<dyn DccEngine>) -> OeChain {
        assert_eq!(self.height, BlockId(0), "cannot swap DCC mid-chain");
        self.dcc = dcc;
        self
    }

    /// The storage engine (for workload setup / inspection).
    #[must_use]
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    /// The snapshot store.
    #[must_use]
    pub fn snapshots(&self) -> &Arc<SnapshotStore> {
        &self.snapshots
    }

    /// Current chain height.
    #[must_use]
    pub fn height(&self) -> BlockId {
        self.height
    }

    /// Hash of the latest block.
    #[must_use]
    pub fn last_hash(&self) -> Digest {
        self.last_hash
    }

    /// Submit the next block of transactions: seal, log, execute.
    pub fn submit_block(
        &mut self,
        txns: Vec<Arc<dyn Contract>>,
        codec: &dyn ContractCodec,
    ) -> Result<(ChainBlock, ProtocolBlockResult)> {
        let id = self.height.next();
        let encoded: Vec<Vec<u8>> = txns.iter().map(|t| codec.encode(t.as_ref())).collect();
        let sealed = ChainBlock::seal(id, self.last_hash, encoded, &self.keypair);
        // Logical logging: persist the input block before execution.
        self.engine.block_log().append(&sealed.encode())?;
        self.engine.block_log().sync()?;

        let result = self.dcc.execute_block(&ExecBlock { id, txns })?;
        self.height = id;
        self.last_hash = sealed.header.hash();
        self.last_summary = result.summary.clone();

        if id.0.is_multiple_of(self.config.checkpoint_every) {
            self.checkpoint()?;
        }
        Ok((sealed, result))
    }

    /// Force a checkpoint now.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.engine.checkpoint(self.height)?;
        // Recovery sidecar: last block's undo images + Rule-3 summary.
        let undo = self.snapshots.export_undo_for(self.height);
        let sidecar = encode_sidecar(self.height, &undo, self.last_summary.as_ref());
        self.engine.wal().append(&sidecar)?;
        self.engine.wal().sync()?;
        Ok(())
    }

    /// Hash of the full database state.
    pub fn state_root(&self) -> Result<Digest> {
        state_root(&self.engine)
    }

    /// Verify the persisted chain: decode every logged block and walk the
    /// hash chain, checking Merkle roots and orderer signatures.
    pub fn verify_chain(&self) -> Result<Vec<ChainBlock>> {
        let records = self.engine.block_log().read_all()?;
        let mut prev = Digest::ZERO;
        let mut blocks = Vec::with_capacity(records.len());
        for rec in &records {
            let block = ChainBlock::decode(rec)?;
            block.verify(&prev, &self.verifier)?;
            prev = block.header.hash();
            blocks.push(block);
        }
        Ok(blocks)
    }

    /// Crash this node (drop caches and unsynced state) and recover:
    /// reload the checkpoint, then deterministically re-execute every
    /// logged block after it.
    pub fn crash_and_recover(&mut self, codec: &dyn ContractCodec) -> Result<()> {
        self.engine.crash_and_recover()?;
        let checkpoint = self.engine.last_checkpoint().unwrap_or(BlockId(0));

        // Rebuild the snapshot overlay and Rule-3 state from the sidecar.
        self.snapshots = Arc::new(SnapshotStore::new(Arc::clone(&self.engine)));
        self.last_summary = None;
        if checkpoint.0 > 0 {
            let sidecars = self.engine.wal().read_all()?;
            let latest = sidecars
                .iter()
                .rev()
                .find_map(|s| decode_sidecar(s).ok().filter(|(b, _, _)| *b == checkpoint));
            if let Some((block, undo, summary)) = latest {
                let tid = harmony_common::TxnId::new(block, 0).0;
                self.snapshots.import_undo_for(block, &undo, tid);
                self.last_summary = summary;
            }
        }

        // Re-create the DCC engine positioned after the checkpoint.
        self.dcc = Arc::new(HarmonyEngine::starting_at(
            Arc::clone(&self.snapshots),
            self.config.harmony,
            checkpoint.next(),
            self.last_summary.clone(),
        ));

        // Verify and replay the logged blocks after the checkpoint.
        let blocks = self.verify_chain()?;
        self.height = checkpoint;
        self.last_hash = blocks
            .iter()
            .rfind(|b| b.header.id <= checkpoint)
            .map_or(Digest::ZERO, |b| b.header.hash());
        for block in &blocks {
            if block.header.id <= checkpoint {
                continue;
            }
            let txns: Result<Vec<Arc<dyn Contract>>> =
                block.txns.iter().map(|b| codec.decode(b)).collect();
            let result = self.dcc.execute_block(&ExecBlock {
                id: block.header.id,
                txns: txns?,
            })?;
            self.height = block.header.id;
            self.last_hash = block.header.hash();
            self.last_summary = result.summary.clone();
        }
        Ok(())
    }
}

// ── Recovery sidecar codec ───────────────────────────────────────────────

fn put_key(w: &mut Writer, key: &Key) {
    w.put_u16(key.table().0);
    w.put_bytes(key.row());
}

fn get_key(r: &mut Reader<'_>) -> Result<Key> {
    let table = harmony_common::ids::TableId(r.get_u16()?);
    let row = r.get_bytes()?;
    Ok(Key::new(table, row))
}

fn encode_sidecar(
    block: BlockId,
    undo: &[(Key, Option<Value>)],
    summary: Option<&BlockSummary>,
) -> Vec<u8> {
    let mut w = Writer::with_capacity(256);
    w.put_u64(block.0);
    w.put_u32(u32::try_from(undo.len()).expect("undo count"));
    for (key, before) in undo {
        put_key(&mut w, key);
        match before {
            Some(v) => {
                w.put_u8(1);
                w.put_bytes(v);
            }
            None => w.put_u8(0),
        }
    }
    match summary {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_u64(s.block.0);
            w.put_u32(u32::try_from(s.committed_writes.len()).expect("writes"));
            let mut writes: Vec<_> = s.committed_writes.iter().collect();
            writes.sort_by(|a, b| a.0.cmp(b.0));
            for (key, info) in writes {
                put_key(&mut w, key);
                w.put_u64(info.min_tid);
                w.put_u8(u8::from(info.backward_out));
            }
            w.put_u32(u32::try_from(s.committed_reads.len()).expect("reads"));
            let mut reads: Vec<_> = s.committed_reads.iter().collect();
            reads.sort_by(|a, b| a.0.cmp(b.0));
            for (key, tid) in reads {
                put_key(&mut w, key);
                w.put_u64(*tid);
            }
            w.put_u32(u32::try_from(s.committed_read_preds.len()).expect("preds"));
            for (tid, pred) in &s.committed_read_preds {
                w.put_u64(*tid);
                w.put_u16(pred.table.0);
                w.put_bytes(&pred.start);
                match &pred.end {
                    Some(e) => {
                        w.put_u8(1);
                        w.put_bytes(e);
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }
    w.finish().to_vec()
}

type Sidecar = (BlockId, Vec<(Key, Option<Value>)>, Option<BlockSummary>);

fn decode_sidecar(bytes: &[u8]) -> Result<Sidecar> {
    let mut r = Reader::new(bytes);
    let block = BlockId(r.get_u64()?);
    let n = r.get_u32()? as usize;
    let mut undo = Vec::with_capacity(n);
    for _ in 0..n {
        let key = get_key(&mut r)?;
        let before = match r.get_u8()? {
            0 => None,
            1 => Some(Value::from(r.get_bytes()?)),
            t => return Err(Error::Corruption(format!("bad undo tag {t}"))),
        };
        undo.push((key, before));
    }
    let summary = match r.get_u8()? {
        0 => None,
        1 => {
            let sblock = BlockId(r.get_u64()?);
            let mut committed_writes = HashMap::new();
            for _ in 0..r.get_u32()? {
                let key = get_key(&mut r)?;
                let min_tid = r.get_u64()?;
                let backward_out = r.get_u8()? == 1;
                committed_writes.insert(
                    key,
                    WriterInfo {
                        min_tid,
                        backward_out,
                    },
                );
            }
            let mut committed_reads = HashMap::new();
            for _ in 0..r.get_u32()? {
                let key = get_key(&mut r)?;
                committed_reads.insert(key, r.get_u64()?);
            }
            let mut committed_read_preds = Vec::new();
            for _ in 0..r.get_u32()? {
                let tid = r.get_u64()?;
                let table = harmony_common::ids::TableId(r.get_u16()?);
                let start = bytes::Bytes::from(r.get_bytes()?);
                let end = match r.get_u8()? {
                    0 => None,
                    1 => Some(bytes::Bytes::from(r.get_bytes()?)),
                    t => return Err(Error::Corruption(format!("bad pred tag {t}"))),
                };
                committed_read_preds.push((tid, RangePredicate { table, start, end }));
            }
            Some(BlockSummary {
                block: sblock,
                committed_writes,
                committed_reads,
                committed_read_preds,
            })
        }
        t => return Err(Error::Corruption(format!("bad summary tag {t}"))),
    };
    Ok((block, undo, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_roundtrip() {
        let key = Key::from_u64(harmony_common::ids::TableId(2), 9);
        let undo = vec![
            (key.clone(), Some(Value::from_static(b"before"))),
            (Key::from_u64(harmony_common::ids::TableId(2), 10), None),
        ];
        let mut summary = BlockSummary {
            block: BlockId(7),
            ..BlockSummary::default()
        };
        summary.committed_writes.insert(
            key.clone(),
            WriterInfo {
                min_tid: 123,
                backward_out: true,
            },
        );
        summary.committed_reads.insert(key, 456);
        summary.committed_read_preds.push((
            789,
            RangePredicate {
                table: harmony_common::ids::TableId(3),
                start: bytes::Bytes::from_static(b"a"),
                end: Some(bytes::Bytes::from_static(b"z")),
            },
        ));
        let enc = encode_sidecar(BlockId(7), &undo, Some(&summary));
        let (block, undo2, summary2) = decode_sidecar(&enc).unwrap();
        assert_eq!(block, BlockId(7));
        assert_eq!(undo2, undo);
        let s2 = summary2.unwrap();
        assert_eq!(s2.block, BlockId(7));
        assert_eq!(s2.committed_writes.len(), 1);
        assert_eq!(s2.committed_reads.len(), 1);
        assert_eq!(s2.committed_read_preds.len(), 1);
        assert!(s2.committed_writes.values().next().unwrap().backward_out);
    }

    #[test]
    fn sharded_root_detects_single_shard_divergence() {
        let roots = [Digest([1; 32]), Digest([2; 32]), Digest([3; 32])];
        let top = sharded_state_root(&roots);
        assert_eq!(top, sharded_state_root(&roots), "deterministic");
        let mut tampered = roots;
        tampered[1].0[0] ^= 1;
        assert_ne!(top, sharded_state_root(&tampered));
        // Order-sensitive: shard index is part of the commitment.
        let swapped = [roots[1], roots[0], roots[2]];
        assert_ne!(top, sharded_state_root(&swapped));
    }

    #[test]
    fn sidecar_without_summary() {
        let enc = encode_sidecar(BlockId(3), &[], None);
        let (block, undo, summary) = decode_sidecar(&enc).unwrap();
        assert_eq!(block, BlockId(3));
        assert!(undo.is_empty());
        assert!(summary.is_none());
    }
}
