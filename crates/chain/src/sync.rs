//! State-sync: the checkpoint manifest a replica transfers to bootstrap a
//! lagging (or freshly joined) peer without replaying from genesis.
//!
//! A [`StateSnapshot`] captures everything a node needs to continue the
//! chain from height `h`:
//!
//! * the full table contents at `h` (the checkpoint manifest proper),
//! * the hash of block `h` (so the hash chain continues verifiably),
//! * the last block's undo images and Rule-3 summary — the same recovery
//!   sidecar the crash path uses, so Harmony's inter-block validation
//!   replays bit-identically on the synced node.
//!
//! The protocol is two phases (driven by `harmony-node`'s `StateSync`):
//! manifest transfer ([`OeChain::install_snapshot`]) followed by
//! block-range replay ([`OeChain::replay_range`]) of everything the peer
//! committed after the snapshot point.

use harmony_common::codec::{Reader, Writer};
use harmony_common::{BlockId, Result};
use harmony_core::executor::BlockSummary;
use harmony_crypto::{sha256, Digest};

use crate::oe::{
    export_recent_undo, get_block_undo, get_summary, put_block_undo, put_summary, BlockUndo,
    OeChain,
};

/// One table's full contents at the snapshot height.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDump {
    /// Table name (ids are reassigned in creation order on install).
    pub name: String,
    /// All rows, in key order.
    pub rows: Vec<(Vec<u8>, Vec<u8>)>,
}

/// A transferable checkpoint manifest: the chain position plus the full
/// database state and recovery sidecar at that position.
#[derive(Clone, Debug)]
pub struct StateSnapshot {
    /// Height the snapshot was taken at.
    pub height: BlockId,
    /// Hash of the block at `height` (hash-chain continuation point).
    pub last_hash: Digest,
    /// Every table's contents, in catalog order.
    pub tables: Vec<TableDump>,
    /// Undo images of the trailing blocks, oldest first (snapshot-overlay
    /// and version-history reseed — same depth as the recovery sidecar).
    pub undo: Vec<BlockUndo>,
    /// Rule-3 summary of the last executed block (Harmony continuity).
    pub summary: Option<BlockSummary>,
}

impl StateSnapshot {
    /// Capture `chain`'s state at its current height.
    pub fn export(chain: &OeChain) -> Result<StateSnapshot> {
        let engine = chain.engine();
        let mut tables = Vec::new();
        for (name, id) in engine.list_tables() {
            let mut rows = Vec::new();
            engine.scan(id, b"", None, |k, v| {
                rows.push((k.to_vec(), v.to_vec()));
                true
            })?;
            tables.push(TableDump { name, rows });
        }
        Ok(StateSnapshot {
            height: chain.height(),
            last_hash: chain.last_hash(),
            tables,
            undo: export_recent_undo(
                chain.snapshots(),
                chain.height(),
                chain.config().sidecar_depth,
            ),
            summary: chain.last_summary().cloned(),
        })
    }

    /// Serialize for transfer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(1024);
        w.put_u64(self.height.0);
        w.put_raw(&self.last_hash.0);
        w.put_u32(u32::try_from(self.tables.len()).expect("table count"));
        for t in &self.tables {
            w.put_bytes(t.name.as_bytes());
            w.put_u32(u32::try_from(t.rows.len()).expect("row count"));
            for (k, v) in &t.rows {
                w.put_bytes(k);
                w.put_bytes(v);
            }
        }
        put_block_undo(&mut w, &self.undo);
        put_summary(&mut w, self.summary.as_ref());
        w.finish().to_vec()
    }

    /// Deserialize a transferred manifest.
    pub fn decode(bytes: &[u8]) -> Result<StateSnapshot> {
        let mut r = Reader::new(bytes);
        let height = BlockId(r.get_u64()?);
        let last_hash = Digest(r.get_raw(32)?.try_into().expect("32 bytes"));
        let n_tables = r.get_u32()? as usize;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = String::from_utf8(r.get_bytes()?)
                .map_err(|e| harmony_common::Error::Corruption(format!("table name: {e}")))?;
            let n_rows = r.get_u32()? as usize;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let k = r.get_bytes()?;
                let v = r.get_bytes()?;
                rows.push((k, v));
            }
            tables.push(TableDump { name, rows });
        }
        let undo = get_block_undo(&mut r)?;
        let summary = get_summary(&mut r)?;
        Ok(StateSnapshot {
            height,
            last_hash,
            tables,
            undo,
            summary,
        })
    }

    /// Content digest of the manifest — what a paranoid receiver compares
    /// against an out-of-band commitment before installing.
    #[must_use]
    pub fn digest(&self) -> Digest {
        sha256(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChainConfig;
    use harmony_common::DetRng;
    use harmony_workloads::{Workload, Ycsb, YcsbCodec, YcsbConfig};

    fn running_chain(blocks: usize) -> (OeChain, YcsbCodec, Ycsb, DetRng) {
        let mut chain = OeChain::in_memory(ChainConfig {
            checkpoint_every: 4,
            ..ChainConfig::in_memory()
        })
        .unwrap();
        let mut w = Ycsb::new(YcsbConfig {
            keys: 200,
            theta: 0.7,
            ..YcsbConfig::default()
        });
        w.setup(chain.engine()).unwrap();
        let codec = YcsbCodec { table: w.table() };
        let mut rng = DetRng::new(0x51AC);
        for _ in 0..blocks {
            let txns = w.next_block(&mut rng, 12);
            chain.submit_block(txns, &codec).unwrap();
        }
        (chain, codec, w, rng)
    }

    #[test]
    fn snapshot_roundtrip_preserves_content() {
        let (chain, _, _, _) = running_chain(6);
        let snap = chain.export_snapshot().unwrap();
        let decoded = StateSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.height, snap.height);
        assert_eq!(decoded.last_hash, snap.last_hash);
        assert_eq!(decoded.tables, snap.tables);
        assert_eq!(decoded.undo, snap.undo);
        assert_eq!(decoded.digest(), snap.digest());
    }

    #[test]
    fn install_then_replay_matches_peer() {
        // Peer runs 6 blocks, exports at 6; a fresh node installs the
        // manifest, then both execute 4 more identical blocks and agree.
        let (mut peer, codec, w, mut rng) = running_chain(6);
        let snap = peer.export_snapshot().unwrap();

        let mut joiner = OeChain::in_memory(ChainConfig {
            checkpoint_every: 4,
            ..ChainConfig::in_memory()
        })
        .unwrap();
        joiner
            .install_snapshot(&StateSnapshot::decode(&snap.encode()).unwrap())
            .unwrap();
        assert_eq!(joiner.height(), peer.height());
        assert_eq!(joiner.last_hash(), peer.last_hash());
        assert_eq!(
            joiner.state_root().unwrap(),
            peer.state_root().unwrap(),
            "manifest install must reproduce the peer's exact state"
        );

        for _ in 0..4 {
            let txns = w.next_block(&mut rng, 12);
            let (sealed, _) = peer.submit_block(txns, &codec).unwrap();
            joiner.apply_sealed_block(&sealed, &codec).unwrap();
        }
        assert_eq!(joiner.state_root().unwrap(), peer.state_root().unwrap());
        assert_eq!(joiner.last_hash(), peer.last_hash());

        // The joiner's base-aware chain verification still works (its log
        // starts at the snapshot height) — and it can crash-recover.
        joiner.verify_chain().unwrap();
        let root = joiner.state_root().unwrap();
        joiner.crash_and_recover(&codec).unwrap();
        assert_eq!(joiner.state_root().unwrap(), root);
    }

    #[test]
    fn install_rejected_on_non_fresh_node() {
        let (chain, _, _, _) = running_chain(2);
        let snap = chain.export_snapshot().unwrap();
        let (mut busy, _, _, _) = running_chain(1);
        assert!(busy.install_snapshot(&snap).is_err());
    }

    #[test]
    fn replay_range_catches_up_from_blocks_after() {
        // A replica that stops at height 3 catches up to 8 purely from a
        // peer's verified block range (no manifest needed).
        let (mut peer, codec, w, mut rng) = running_chain(3);
        let mut lagger = OeChain::in_memory(ChainConfig {
            checkpoint_every: 4,
            ..ChainConfig::in_memory()
        })
        .unwrap();
        let mut w2 = Ycsb::new(YcsbConfig {
            keys: 200,
            theta: 0.7,
            ..YcsbConfig::default()
        });
        w2.setup(lagger.engine()).unwrap();
        // Replay the peer's first 3 blocks, then fall behind.
        lagger
            .replay_range(&peer.blocks_after(BlockId(0)).unwrap(), &codec)
            .unwrap();
        assert_eq!(lagger.height(), BlockId(3));
        for _ in 0..5 {
            let txns = w.next_block(&mut rng, 12);
            peer.submit_block(txns, &codec).unwrap();
        }
        let applied = lagger
            .replay_range(&peer.blocks_after(lagger.height()).unwrap(), &codec)
            .unwrap();
        assert_eq!(applied, 5);
        assert_eq!(lagger.state_root().unwrap(), peer.state_root().unwrap());
        // Idempotent: handing the full suffix again applies nothing.
        assert_eq!(
            lagger
                .replay_range(&peer.blocks_after(BlockId(0)).unwrap(), &codec)
                .unwrap(),
            0
        );
    }
}
