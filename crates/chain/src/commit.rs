//! Incrementally maintained authenticated state commitment.
//!
//! Every replica-consistency check in the system — root gossip, state-sync
//! verification, the N-shard ≡ 1-shard proptests — needs a digest of the
//! full database. Rescanning every table per check is O(n) and was the
//! single hottest non-execution path; instead the chain keeps one
//! [`AuthMap`] per table and folds each block's write-set into it at apply
//! time: O(Δ·log n) per block, O(1) to read the root.
//!
//! The commitment is **history independent** (the treap shape is a pure
//! function of the key set), so the same structure serves both paths:
//! [`StateCommitment::build`] from a full scan is the audit oracle, and the
//! incrementally folded instance a replica maintains must equal it bit for
//! bit. Table names enter the top-level fold length-prefixed — fixing the
//! boundary ambiguity the old flat digest had — and each table's root is an
//! [`AuthMap`] root, so any row has an O(log n) inclusion proof against its
//! table root plus the table head list ([`StateCommitment::table_heads`])
//! to reach the state root: the proof surface for light-client queries.

use harmony_common::ids::TableId;
use harmony_common::Result;
use harmony_crypto::{AuthMap, Digest, MapProof, Sha256};
use harmony_storage::StorageEngine;
use harmony_txn::Key;

struct TableCommit {
    name: String,
    id: TableId,
    map: AuthMap,
}

/// Per-table authenticated maps plus a cached top-level root.
pub struct StateCommitment {
    /// Sorted by [`TableId`] — the catalog enumeration order, which is what
    /// the top-level fold commits to.
    tables: Vec<TableCommit>,
    root: Option<Digest>,
}

/// Fold `(name, root)` table heads into the state root. Names are
/// length-prefixed so adjacent name/digest boundaries are unambiguous.
pub fn fold_table_roots<N: AsRef<str>>(heads: &[(N, Digest)]) -> Digest {
    let mut h = Sha256::new();
    for (name, root) in heads {
        let name = name.as_ref().as_bytes();
        h.update(&u32::try_from(name.len()).unwrap_or(u32::MAX).to_le_bytes());
        h.update(name);
        h.update(&root.0);
    }
    h.finalize()
}

impl StateCommitment {
    /// Build the commitment from a full scan of every table — the audit
    /// oracle, and the bootstrap path the first time a chain needs a root.
    pub fn build(engine: &StorageEngine) -> Result<StateCommitment> {
        let mut c = StateCommitment {
            tables: Vec::new(),
            root: None,
        };
        c.refresh_catalog(engine);
        for table in &mut c.tables {
            engine.scan(table.id, b"", None, |k, v| {
                table.map.upsert(k, v);
                true
            })?;
        }
        Ok(c)
    }

    /// Fold one block's write-set: re-read each written key from the engine
    /// (post-state) and upsert or remove it. O(Δ·log n).
    pub fn apply_writes(&mut self, engine: &StorageEngine, keys: &[Key]) -> Result<()> {
        for key in keys {
            let idx = match self.table_index(key.table()) {
                Some(idx) => idx,
                None => {
                    // A table created since the last catalog refresh.
                    self.refresh_catalog(engine);
                    self.table_index(key.table()).ok_or_else(|| {
                        harmony_common::Error::InvalidArgument(format!(
                            "write to unknown table {:?}",
                            key.table()
                        ))
                    })?
                }
            };
            let map = &mut self.tables[idx].map;
            match engine.get(key.table(), key.row())? {
                Some(value) => map.upsert(key.row(), &value),
                None => map.remove(key.row()),
            };
        }
        if !keys.is_empty() {
            self.root = None;
        }
        Ok(())
    }

    /// The state root. O(T) fold over cached per-table roots when dirty,
    /// O(1) otherwise.
    pub fn root(&mut self) -> Digest {
        if let Some(root) = self.root {
            return root;
        }
        let heads: Vec<(&str, Digest)> = self
            .tables
            .iter()
            .map(|t| (t.name.as_str(), t.map.root()))
            .collect();
        let root = fold_table_roots(&heads);
        self.root = Some(root);
        root
    }

    /// `(name, root)` per table in catalog order — what a light client needs
    /// to tie a table root to the state root via [`fold_table_roots`].
    #[must_use]
    pub fn table_heads(&self) -> Vec<(String, Digest)> {
        self.tables
            .iter()
            .map(|t| (t.name.clone(), t.map.root()))
            .collect()
    }

    /// Inclusion proof for a row against its table's root, or None if the
    /// table or row is absent. Verify with [`AuthMap::verify`] against the
    /// matching entry of [`StateCommitment::table_heads`].
    #[must_use]
    pub fn prove_row(&self, table: TableId, row: &[u8]) -> Option<MapProof> {
        let idx = self.table_index(table)?;
        self.tables[idx].map.prove(row)
    }

    /// Total number of committed rows across all tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.iter().map(|t| t.map.len()).sum()
    }

    /// True when no rows are committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn table_index(&self, id: TableId) -> Option<usize> {
        self.tables.binary_search_by_key(&id, |t| t.id).ok()
    }

    /// Register any catalog tables not yet tracked (empty maps); keeps
    /// `tables` sorted by id. Existing maps are untouched.
    fn refresh_catalog(&mut self, engine: &StorageEngine) {
        for (name, id) in engine.list_tables() {
            if self.table_index(id).is_none() {
                let at = self.tables.partition_point(|t| t.id < id);
                self.tables.insert(
                    at,
                    TableCommit {
                        name,
                        id,
                        map: AuthMap::new(),
                    },
                );
                self.root = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_storage::StorageConfig;

    fn engine() -> StorageEngine {
        StorageEngine::open(&StorageConfig::memory()).unwrap()
    }

    #[test]
    fn build_matches_incremental_folding() {
        let e = engine();
        let t = e.create_table("accounts").unwrap();
        let u = e.create_table("orders").unwrap();
        for i in 0..200u64 {
            e.put(t, format!("a{i}").as_bytes(), b"0").unwrap();
        }
        let mut inc = StateCommitment::build(&e).unwrap();

        // Mutate: updates, an insert, a delete, and a write to the other table.
        let mut keys = Vec::new();
        for i in (0..200u64).step_by(7) {
            let row = format!("a{i}").into_bytes();
            e.put(t, &row, b"1").unwrap();
            keys.push(Key::new(t, row));
        }
        e.put(t, b"a-new", b"x").unwrap();
        keys.push(Key::new(t, b"a-new".to_vec()));
        e.delete(t, b"a3").unwrap();
        keys.push(Key::new(t, b"a3".to_vec()));
        e.put(u, b"o1", b"y").unwrap();
        keys.push(Key::new(u, b"o1".to_vec()));
        inc.apply_writes(&e, &keys).unwrap();

        let mut oracle = StateCommitment::build(&e).unwrap();
        assert_eq!(inc.root(), oracle.root());
        assert_eq!(inc.len(), oracle.len());
    }

    #[test]
    fn apply_writes_registers_tables_created_after_build() {
        let e = engine();
        e.create_table("t0").unwrap();
        let mut inc = StateCommitment::build(&e).unwrap();
        let late = e.create_table("late").unwrap();
        e.put(late, b"k", b"v").unwrap();
        inc.apply_writes(&e, &[Key::new(late, b"k".to_vec())])
            .unwrap();
        let mut oracle = StateCommitment::build(&e).unwrap();
        assert_eq!(inc.root(), oracle.root());
    }

    #[test]
    fn table_names_are_length_prefixed_in_fold() {
        // ("ab" table containing row c=…) vs ("a" table containing row bc=…)
        // style boundary shifts must not collide at the top-level fold.
        let r = Digest([7; 32]);
        let a = fold_table_roots(&[("ab", r), ("c", r)]);
        let b = fold_table_roots(&[("a", r), ("bc", r)]);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_table_still_contributes_its_name() {
        let e = engine();
        e.create_table("empty").unwrap();
        let mut with = StateCommitment::build(&e).unwrap();
        let f = engine();
        let mut without = StateCommitment::build(&f).unwrap();
        assert_ne!(with.root(), without.root());
    }

    #[test]
    fn row_proofs_verify_against_table_heads() {
        let e = engine();
        let t = e.create_table("accounts").unwrap();
        for i in 0..64u64 {
            e.put(t, format!("a{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let mut c = StateCommitment::build(&e).unwrap();
        let root = c.root();
        let heads = c.table_heads();
        assert_eq!(fold_table_roots(&heads), root);
        let proof = c.prove_row(t, b"a17").unwrap();
        let table_root = heads
            .iter()
            .find(|(n, _)| n == "accounts")
            .map(|(_, r)| *r)
            .unwrap();
        assert!(AuthMap::verify(&table_root, b"a17", b"v17", &proof));
        assert!(!AuthMap::verify(&table_root, b"a17", b"v18", &proof));
        assert!(c.prove_row(t, b"absent").is_none());
    }
}
