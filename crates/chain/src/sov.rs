//! The Simulate-Order-Validate chain (Fabric family) with **physical
//! logging**: after each block commits, the write-sets of the committed
//! transactions are persisted to the WAL, and recovery replays values —
//! no re-execution, but every committed byte hits the log (the runtime
//! overhead Table 1 contrasts with logical logging).

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use harmony_common::{BlockId, Result};
use harmony_core::executor::ExecBlock;
use harmony_core::SnapshotStore;
use harmony_crypto::{CryptoCost, Digest, KeyPair, Verifier};
use harmony_dcc_baselines::{DccEngine, Fabric, FabricConfig, ProtocolBlockResult};
use harmony_storage::log::{WalRecord, WalWrite};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::{Contract, ContractCodec};

use crate::block::ChainBlock;
use crate::commit::StateCommitment;

/// A Simulate-Order-Validate blockchain node (Fabric-style).
pub struct SovChain {
    engine: Arc<StorageEngine>,
    snapshots: Arc<SnapshotStore>,
    dcc: Arc<dyn DccEngine>,
    keypair: KeyPair,
    verifier: Verifier,
    height: BlockId,
    last_hash: Digest,
    checkpoint_every: u64,
    /// Incrementally maintained state commitment, folded from the same
    /// committed write-sets the WAL records. Lazily built on first root.
    commitment: Mutex<Option<StateCommitment>>,
}

impl SovChain {
    /// Fresh in-memory Fabric-style node.
    pub fn in_memory(fabric: FabricConfig, checkpoint_every: u64) -> Result<SovChain> {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory())?);
        let snapshots = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
        let dcc: Arc<dyn DccEngine> = Arc::new(Fabric::new(Arc::clone(&snapshots), fabric));
        Ok(SovChain {
            engine,
            snapshots,
            dcc,
            keypair: KeyPair::derive(b"sov-cluster", 0, CryptoCost::free()),
            verifier: Verifier::new(b"sov-cluster", CryptoCost::free()),
            height: BlockId(0),
            last_hash: Digest::ZERO,
            checkpoint_every,
            commitment: Mutex::new(None),
        })
    }

    /// Swap the engine (e.g. FastFabric#). Must precede any block.
    pub fn with_dcc(mut self, dcc: Arc<dyn DccEngine>) -> SovChain {
        assert_eq!(self.height, BlockId(0), "cannot swap DCC mid-chain");
        self.dcc = dcc;
        self
    }

    /// The storage engine.
    #[must_use]
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    /// The snapshot store.
    #[must_use]
    pub fn snapshots(&self) -> &Arc<SnapshotStore> {
        &self.snapshots
    }

    /// Current height.
    #[must_use]
    pub fn height(&self) -> BlockId {
        self.height
    }

    /// Submit a block: seal, execute (endorse/order/validate), then
    /// physically log the committed write-sets.
    pub fn submit_block(
        &mut self,
        txns: Vec<Arc<dyn Contract>>,
        codec: &dyn ContractCodec,
    ) -> Result<(ChainBlock, ProtocolBlockResult)> {
        let id = self.height.next();
        let encoded: Vec<Vec<u8>> = txns.iter().map(|t| codec.encode(t.as_ref())).collect();
        let sealed = ChainBlock::seal(id, self.last_hash, encoded, &self.keypair);
        self.engine.block_log().append(&sealed.encode())?;

        let result = self.dcc.execute_block(&ExecBlock { id, txns })?;

        // Physical logging: committed write-sets, values read back from
        // the freshly committed state.
        let mut writes = Vec::new();
        let mut seen = HashSet::new();
        for (i, rwset) in result.rwsets.iter().enumerate() {
            if !result.outcomes[i].is_committed() {
                continue;
            }
            let Some(rwset) = rwset else { continue };
            for key in rwset.write_keys() {
                if seen.insert(key.clone()) {
                    let value = self.engine.get(key.table(), key.row())?;
                    writes.push(WalWrite {
                        table: key.table(),
                        key: key.row().to_vec(),
                        value,
                    });
                }
            }
        }
        self.engine
            .wal()
            .append(&WalRecord { block: id, writes }.encode())?;
        self.engine.wal().sync()?;

        // Fold the same committed write-set into the state commitment.
        {
            let mut guard = self.commitment.lock().expect("commitment lock");
            if let Some(c) = guard.as_mut() {
                let keys: Vec<_> = seen.into_iter().collect();
                c.apply_writes(&self.engine, &keys)?;
            }
        }

        self.height = id;
        self.last_hash = sealed.header.hash();
        if id.0.is_multiple_of(self.checkpoint_every) {
            self.engine.checkpoint(id)?;
        }
        Ok((sealed, result))
    }

    /// Hash of the full database state — the cached commitment root,
    /// O(1) on a warm chain and bit-identical to the full-scan oracle
    /// [`crate::oe::state_root`].
    pub fn state_root(&self) -> Result<Digest> {
        let mut guard = self.commitment.lock().expect("commitment lock");
        if guard.is_none() {
            *guard = Some(StateCommitment::build(&self.engine)?);
        }
        Ok(guard.as_mut().expect("just built").root())
    }

    /// Verify the persisted hash chain.
    pub fn verify_chain(&self) -> Result<Vec<ChainBlock>> {
        let records = self.engine.block_log().read_all()?;
        let mut prev = Digest::ZERO;
        let mut blocks = Vec::with_capacity(records.len());
        for rec in &records {
            let block = ChainBlock::decode(rec)?;
            block.verify(&prev, &self.verifier)?;
            prev = block.header.hash();
            blocks.push(block);
        }
        Ok(blocks)
    }

    /// Crash and recover by *value replay*: reload the checkpoint, then
    /// apply the WAL's committed write-sets for every newer block. No
    /// re-execution — physical logging's recovery discipline.
    pub fn crash_and_recover(&mut self) -> Result<()> {
        self.engine.crash_and_recover()?;
        let checkpoint = self.engine.last_checkpoint().unwrap_or(BlockId(0));
        self.snapshots = Arc::new(SnapshotStore::new(Arc::clone(&self.engine)));
        *self.commitment.lock().expect("commitment lock") = None;
        let mut height = checkpoint;
        for rec in self.engine.wal().read_all()? {
            let rec = WalRecord::decode(&rec)?;
            if rec.block <= checkpoint {
                continue;
            }
            for w in &rec.writes {
                match &w.value {
                    Some(v) => self.engine.put(w.table, &w.key, v)?,
                    None => {
                        let _ = self.engine.delete(w.table, &w.key)?;
                    }
                }
            }
            height = height.max(rec.block);
        }
        self.height = height;
        // Re-position the DCC engine and recompute the chain tip.
        let blocks = self.verify_chain()?;
        self.last_hash = blocks
            .iter()
            .rfind(|b| b.header.id <= height)
            .map_or(Digest::ZERO, |b| b.header.hash());
        self.dcc = Arc::new(Fabric::starting_at(
            Arc::clone(&self.snapshots),
            FabricConfig::default(),
            height.next(),
        ));
        Ok(())
    }
}
