//! Hash-chained blocks.
//!
//! Each block header carries the previous block's hash and a Merkle root
//! over the serialized transactions, and is MAC-signed by the ordering
//! service. "Since the input determines the final states in DCC, ensuring
//! a tamper-proof input guarantees the tamper-proof of the final state"
//! (§4) — so verification walks the chain backwards comparing hashes.

use harmony_common::codec::{Reader, Writer};
use harmony_common::{BlockId, Error, Result};
use harmony_crypto::{KeyPair, MerkleTree, Sha256, Signature, Verifier};

/// Block header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block id (height).
    pub id: BlockId,
    /// Hash of the previous block (zero for the first block).
    pub prev_hash: harmony_crypto::Digest,
    /// Merkle root over the serialized transactions.
    pub txn_root: harmony_crypto::Digest,
    /// Orderer identity that sealed the block.
    pub sealer: u64,
    /// Orderer MAC over `(id, prev_hash, txn_root)`.
    pub signature: Signature,
}

impl BlockHeader {
    fn signing_bytes(
        id: BlockId,
        prev: &harmony_crypto::Digest,
        root: &harmony_crypto::Digest,
    ) -> Vec<u8> {
        let mut w = Writer::with_capacity(72);
        w.put_u64(id.0);
        w.put_raw(&prev.0);
        w.put_raw(&root.0);
        w.finish().to_vec()
    }

    /// The block's own hash: SHA-256 over the header contents.
    #[must_use]
    pub fn hash(&self) -> harmony_crypto::Digest {
        let mut h = Sha256::new();
        h.update(&Self::signing_bytes(
            self.id,
            &self.prev_hash,
            &self.txn_root,
        ));
        h.update(&self.signature.mac.0);
        h.finalize()
    }
}

/// A sealed block: header + serialized transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainBlock {
    /// The header.
    pub header: BlockHeader,
    /// Serialized transactions (codec wire format).
    pub txns: Vec<Vec<u8>>,
}

impl ChainBlock {
    /// Seal a block: compute the Merkle root and sign the header.
    #[must_use]
    pub fn seal(
        id: BlockId,
        prev_hash: harmony_crypto::Digest,
        txns: Vec<Vec<u8>>,
        sealer: &KeyPair,
    ) -> ChainBlock {
        let txn_root = MerkleTree::build(&txns).root();
        let signature = sealer.sign(&BlockHeader::signing_bytes(id, &prev_hash, &txn_root));
        ChainBlock {
            header: BlockHeader {
                id,
                prev_hash,
                txn_root,
                sealer: sealer.id(),
                signature,
            },
            txns,
        }
    }

    /// Verify the block: orderer signature, Merkle root, and linkage to
    /// the expected previous hash.
    pub fn verify(
        &self,
        expected_prev: &harmony_crypto::Digest,
        verifier: &Verifier,
    ) -> Result<()> {
        if self.header.prev_hash != *expected_prev {
            return Err(Error::Corruption(format!(
                "block {} prev-hash mismatch",
                self.header.id
            )));
        }
        let root = MerkleTree::build(&self.txns).root();
        if root != self.header.txn_root {
            return Err(Error::Corruption(format!(
                "block {} transaction root mismatch",
                self.header.id
            )));
        }
        let bytes = BlockHeader::signing_bytes(
            self.header.id,
            &self.header.prev_hash,
            &self.header.txn_root,
        );
        if !verifier.verify(&bytes, &self.header.signature) {
            return Err(Error::Corruption(format!(
                "block {} orderer signature invalid",
                self.header.id
            )));
        }
        Ok(())
    }

    /// Serialize for the block log.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(128 + self.txns.iter().map(Vec::len).sum::<usize>());
        w.put_u64(self.header.id.0);
        w.put_raw(&self.header.prev_hash.0);
        w.put_raw(&self.header.txn_root.0);
        w.put_u64(self.header.sealer);
        w.put_u64(self.header.signature.signer);
        w.put_raw(&self.header.signature.mac.0);
        w.put_u32(u32::try_from(self.txns.len()).expect("txn count"));
        for t in &self.txns {
            w.put_bytes(t);
        }
        w.finish().to_vec()
    }

    /// Deserialize from the block log.
    pub fn decode(bytes: &[u8]) -> Result<ChainBlock> {
        let mut r = Reader::new(bytes);
        let id = BlockId(r.get_u64()?);
        let prev_hash = harmony_crypto::Digest(r.get_raw(32)?.try_into().expect("32 bytes"));
        let txn_root = harmony_crypto::Digest(r.get_raw(32)?.try_into().expect("32 bytes"));
        let sealer = r.get_u64()?;
        let signer = r.get_u64()?;
        let mac = harmony_crypto::Digest(r.get_raw(32)?.try_into().expect("32 bytes"));
        let n = r.get_u32()? as usize;
        let mut txns = Vec::with_capacity(n);
        for _ in 0..n {
            txns.push(r.get_bytes()?);
        }
        Ok(ChainBlock {
            header: BlockHeader {
                id,
                prev_hash,
                txn_root,
                sealer,
                signature: Signature { signer, mac },
            },
            txns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_crypto::CryptoCost;

    fn sealer() -> (KeyPair, Verifier) {
        (
            KeyPair::derive(b"orderer-secret", 1, CryptoCost::free()),
            Verifier::new(b"orderer-secret", CryptoCost::free()),
        )
    }

    fn sample(id: u64, prev: harmony_crypto::Digest) -> (ChainBlock, Verifier) {
        let (kp, v) = sealer();
        let txns = vec![b"txn-a".to_vec(), b"txn-b".to_vec()];
        (ChainBlock::seal(BlockId(id), prev, txns, &kp), v)
    }

    #[test]
    fn seal_verify_roundtrip() {
        let (block, v) = sample(1, harmony_crypto::Digest::ZERO);
        block.verify(&harmony_crypto::Digest::ZERO, &v).unwrap();
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (block, v) = sample(3, harmony_crypto::Digest::ZERO);
        let decoded = ChainBlock::decode(&block.encode()).unwrap();
        assert_eq!(decoded, block);
        decoded.verify(&harmony_crypto::Digest::ZERO, &v).unwrap();
    }

    #[test]
    fn tampered_txn_detected() {
        let (mut block, v) = sample(1, harmony_crypto::Digest::ZERO);
        block.txns[0] = b"evil".to_vec();
        assert!(matches!(
            block.verify(&harmony_crypto::Digest::ZERO, &v),
            Err(Error::Corruption(_))
        ));
    }

    #[test]
    fn wrong_prev_hash_detected() {
        let (block, v) = sample(2, harmony_crypto::sha256(b"other"));
        assert!(block.verify(&harmony_crypto::Digest::ZERO, &v).is_err());
    }

    #[test]
    fn forged_signature_detected() {
        let (mut block, v) = sample(1, harmony_crypto::Digest::ZERO);
        block.header.signature.mac.0[0] ^= 1;
        assert!(block.verify(&harmony_crypto::Digest::ZERO, &v).is_err());
    }

    #[test]
    fn chain_linkage() {
        let (kp, v) = sealer();
        let b1 = ChainBlock::seal(
            BlockId(1),
            harmony_crypto::Digest::ZERO,
            vec![b"x".to_vec()],
            &kp,
        );
        let b2 = ChainBlock::seal(BlockId(2), b1.header.hash(), vec![b"y".to_vec()], &kp);
        b1.verify(&harmony_crypto::Digest::ZERO, &v).unwrap();
        b2.verify(&b1.header.hash(), &v).unwrap();
        // Tampering with b1's contents breaks b2's linkage check.
        let mut evil = b1.clone();
        evil.txns[0] = b"evil".to_vec();
        let evil_resealed = ChainBlock::seal(
            BlockId(1),
            harmony_crypto::Digest::ZERO,
            evil.txns.clone(),
            &kp,
        );
        assert!(b2.verify(&evil_resealed.header.hash(), &v).is_err());
    }
}
