//! Common substrate shared by every HarmonyBC crate.
//!
//! This crate deliberately has no dependency on the rest of the workspace and
//! provides:
//!
//! * strongly-typed identifiers with the paper's global TID ordering
//!   ([`ids`]),
//! * a versioned fixed-width byte codec used by every durable format
//!   ([`codec`]),
//! * a deterministic, seedable random number generator and the Zipfian /
//!   workload distributions built on it ([`rng`], [`zipf`]),
//! * thread-local virtual-time cost accounting used by the benchmark
//!   scheduler ([`vtime`]),
//! * small statistics helpers for latency/throughput reporting ([`stats`]).

pub mod codec;
pub mod error;
pub mod hash;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod vtime;
pub mod zipf;

pub use error::{Error, Result};
pub use ids::{BlockId, TableId, TxnId, TXNS_PER_BLOCK_MAX};
pub use rng::DetRng;
pub use zipf::Zipfian;
