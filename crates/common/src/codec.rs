//! Fixed-width, little-endian byte codec.
//!
//! All durable formats in the workspace (pages, WAL records, block logs,
//! checkpoint manifests) are hand-rolled with these helpers so the on-disk
//! layout is explicit, versioned and independent of any serialization
//! framework.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};

/// Writer over a growable buffer.
#[derive(Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// New writer with a capacity hint.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a `u16` (LE).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Append a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append an `i64` (LE).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (LE).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Append a length-prefixed byte slice (u32 length).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("slice longer than u32::MAX"));
        self.buf.put_slice(v);
    }

    /// Append raw bytes with no length prefix (fixed-width fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Current encoded length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable buffer.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reader over a byte slice; every accessor checks bounds and returns
/// [`Error::Corruption`] on truncated input.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            return Err(Error::Corruption(format!(
                "truncated input: need {n} bytes, have {}",
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a `u16` (LE).
    pub fn get_u16(&mut self) -> Result<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Read a `u32` (LE).
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a `u64` (LE).
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read an `i64` (LE).
    pub fn get_i64(&mut self) -> Result<i64> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Read an `f64` from its IEEE-754 bit pattern (LE).
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let out = self.buf[..len].to_vec();
        self.buf.advance(len);
        Ok(out)
    }

    /// Read `n` raw bytes (fixed-width field).
    pub fn get_raw(&mut self, n: usize) -> Result<Vec<u8>> {
        self.need(n)?;
        let out = self.buf[..n].to_vec();
        self.buf.advance(n);
        Ok(out)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw).map_err(|_| Error::Corruption("invalid utf-8".into()))
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// CRC-32 (Castagnoli polynomial, bit-reflected) used to checksum pages and
/// log records. Implemented from scratch to avoid a dependency; the table is
/// built at first use.
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0x82F6_3B78 // reflected CRC-32C polynomial
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::default();
        w.put_u8(7);
        w.put_u16(1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(3.5);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_bytes_and_str() {
        let mut w = Writer::with_capacity(64);
        w.put_bytes(b"hello");
        w.put_str("world \u{1F980}");
        w.put_raw(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "world \u{1F980}");
        assert_eq!(r.get_raw(3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncated_input_is_corruption() {
        let mut w = Writer::default();
        w.put_u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..4]);
        assert!(matches!(r.get_u64(), Err(Error::Corruption(_))));
    }

    #[test]
    fn truncated_length_prefixed_is_corruption() {
        let mut w = Writer::default();
        w.put_bytes(&[9; 100]);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..10]);
        assert!(matches!(r.get_bytes(), Err(Error::Corruption(_))));
    }

    #[test]
    fn invalid_utf8_is_corruption() {
        let mut w = Writer::default();
        w.put_bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.get_str(), Err(Error::Corruption(_))));
    }

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // "123456789"
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc32c_detects_flip() {
        let a = crc32c(b"harmony");
        let b = crc32c(b"harmonz");
        assert_ne!(a, b);
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = Writer::default();
        assert!(w.is_empty());
        w.put_u32(1);
        assert_eq!(w.len(), 4);
    }
}
