//! Thread-local virtual-time cost accounting.
//!
//! The benchmark harness measures *virtual* elapsed time: protocols execute
//! for real (real read/write sets, real aborts, real buffer-pool state), and
//! every costed operation — a B+Tree descent, a buffer miss, a disk write, a
//! signature verification — reports its cost here. The scheduler in
//! `harmony-sim` then charges each task with the virtual nanoseconds it
//! accumulated and computes block makespans with the protocol's real
//! precedence structure.
//!
//! The accumulator is thread-local so concurrent workers never contend on a
//! shared counter, and scoping is explicit: the measuring code brackets a
//! task with [`take`] (or [`scope`]).

use std::cell::Cell;

thread_local! {
    static VCOST: Cell<u64> = const { Cell::new(0) };
}

/// Charge `ns` virtual nanoseconds to the current thread's accumulator.
#[inline]
pub fn charge(ns: u64) {
    VCOST.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Read the accumulator without resetting it.
#[inline]
#[must_use]
pub fn read() -> u64 {
    VCOST.with(Cell::get)
}

/// Reset the accumulator to zero, returning the previous value.
#[inline]
pub fn take() -> u64 {
    VCOST.with(|c| c.replace(0))
}

/// Run `f` and return `(result, virtual-ns charged by f)`. Any cost already
/// accumulated on this thread is preserved around the scope.
pub fn scope<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let saved = take();
    let out = f();
    let cost = take();
    charge(saved);
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_take() {
        take();
        charge(100);
        charge(23);
        assert_eq!(read(), 123);
        assert_eq!(take(), 123);
        assert_eq!(read(), 0);
    }

    #[test]
    fn scope_isolates_and_restores() {
        take();
        charge(7);
        let ((), inner) = scope(|| charge(50));
        assert_eq!(inner, 50);
        assert_eq!(take(), 7);
    }

    #[test]
    fn nested_scopes() {
        take();
        let ((), outer) = scope(|| {
            charge(10);
            let ((), inner) = scope(|| charge(5));
            assert_eq!(inner, 5);
            charge(1);
        });
        assert_eq!(outer, 11);
    }

    #[test]
    fn threads_do_not_share() {
        take();
        charge(99);
        let handle = std::thread::spawn(|| {
            assert_eq!(read(), 0);
            charge(1);
            take()
        });
        assert_eq!(handle.join().unwrap(), 1);
        assert_eq!(take(), 99);
    }

    #[test]
    fn saturates_instead_of_overflow() {
        take();
        charge(u64::MAX - 1);
        charge(100);
        assert_eq!(take(), u64::MAX);
    }
}
