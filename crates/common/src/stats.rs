//! Small statistics helpers for throughput / latency reporting.

/// Online accumulator of a stream of samples with percentile support.
///
/// Stores the raw samples; the experiment scales here (≤ millions of
/// transactions) make that the simplest correct choice.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Add one sample.
    pub fn add(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Maximum sample, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Percentile in `[0, 100]` using nearest-rank; 0 if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * (self.samples.len() as f64 - 1.0)).round() as usize;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }
}

/// A ratio counter for abort-rate style metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ratio {
    /// Numerator (e.g. aborted transactions).
    pub hits: u64,
    /// Denominator (e.g. all transactions).
    pub total: u64,
}

impl Ratio {
    /// Record one observation.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Add counts in bulk.
    pub fn add(&mut self, hits: u64, total: u64) {
        self.hits += hits;
        self.total += total;
    }

    /// The ratio as a float, 0 when the denominator is 0.
    #[must_use]
    pub fn value(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Format a transactions-per-second figure the way the paper's plots label
/// axes (e.g. `12.3 K txns/s`).
#[must_use]
pub fn fmt_tps(tps: f64) -> String {
    if tps >= 1_000_000.0 {
        format!("{:.2} M txns/s", tps / 1_000_000.0)
    } else if tps >= 1_000.0 {
        format!("{:.2} K txns/s", tps / 1_000.0)
    } else {
        format!("{tps:.1} txns/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_max() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 22.0).abs() < 1e-9);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn percentiles() {
        let mut s = Summary::new();
        for v in 0..100 {
            s.add(f64::from(v));
        }
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(100.0), 99.0);
        let p95 = s.percentile(95.0);
        assert!((94.0..=95.0).contains(&p95));
    }

    #[test]
    fn empty_summary_is_zero() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Summary::new();
        a.add(1.0);
        let mut b = Summary::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::default();
        r.record(true);
        r.record(false);
        r.record(false);
        r.add(1, 1);
        assert!((r.value() - 0.5).abs() < 1e-9);
        assert_eq!(Ratio::default().value(), 0.0);
    }

    #[test]
    fn tps_formatting() {
        assert_eq!(fmt_tps(12.0), "12.0 txns/s");
        assert_eq!(fmt_tps(12_300.0), "12.30 K txns/s");
        assert_eq!(fmt_tps(2_500_000.0), "2.50 M txns/s");
    }
}
