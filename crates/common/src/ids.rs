//! Strongly-typed identifiers.
//!
//! The paper assumes a *total order* over transaction IDs that is consistent
//! with block order: every TID in block `i` is smaller than every TID in
//! block `i + 1`. We realise that with `TxnId = block * TXNS_PER_BLOCK_MAX +
//! index`, which lets Rule 1/2/3 compare TIDs across blocks with plain
//! integer comparison.

use std::fmt;

/// Upper bound on the number of transactions in one block.
///
/// `TxnId`s are `block * TXNS_PER_BLOCK_MAX + index`, so this constant fixes
/// the stride of the global TID space. 2^20 transactions per block is far
/// above any block size used in the paper (≤ 100).
pub const TXNS_PER_BLOCK_MAX: u64 = 1 << 20;

/// Identifier of a block in the chain. Blocks are numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The block that precedes this one, or `None` for the genesis block.
    #[must_use]
    pub fn prev(self) -> Option<BlockId> {
        self.0.checked_sub(1).map(BlockId)
    }

    /// The block that follows this one.
    #[must_use]
    pub fn next(self) -> BlockId {
        BlockId(self.0 + 1)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Globally ordered transaction identifier (the paper's "TID").
///
/// The ordering is total and consistent with block order, which is what
/// Harmony's validation (Rule 1), reordering (Rule 2) and inter-block
/// validation (Rule 3) compare on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Build a TID from a block id and the transaction's index within it.
    ///
    /// # Panics
    /// Panics if `index` exceeds [`TXNS_PER_BLOCK_MAX`].
    #[must_use]
    pub fn new(block: BlockId, index: u32) -> TxnId {
        assert!(
            u64::from(index) < TXNS_PER_BLOCK_MAX,
            "txn index {index} out of range"
        );
        TxnId(block.0 * TXNS_PER_BLOCK_MAX + u64::from(index))
    }

    /// The block this transaction belongs to.
    #[must_use]
    pub fn block(self) -> BlockId {
        BlockId(self.0 / TXNS_PER_BLOCK_MAX)
    }

    /// Index of the transaction within its block.
    #[must_use]
    pub fn index(self) -> u32 {
        // The modulus is < 2^20 so the cast is lossless.
        #[allow(clippy::cast_possible_truncation)]
        {
            (self.0 % TXNS_PER_BLOCK_MAX) as u32
        }
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.block().0, self.index())
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a table in the relational catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TableId(pub u16);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_roundtrip() {
        let tid = TxnId::new(BlockId(7), 42);
        assert_eq!(tid.block(), BlockId(7));
        assert_eq!(tid.index(), 42);
    }

    #[test]
    fn tid_order_consistent_with_block_order() {
        let last_of_3 = TxnId::new(BlockId(3), (TXNS_PER_BLOCK_MAX - 1) as u32);
        let first_of_4 = TxnId::new(BlockId(4), 0);
        assert!(last_of_3 < first_of_4);
    }

    #[test]
    fn tid_order_within_block() {
        assert!(TxnId::new(BlockId(2), 5) < TxnId::new(BlockId(2), 6));
    }

    #[test]
    fn block_prev_next() {
        assert_eq!(BlockId(0).prev(), None);
        assert_eq!(BlockId(5).prev(), Some(BlockId(4)));
        assert_eq!(BlockId(5).next(), BlockId(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tid_index_overflow_panics() {
        let _ = TxnId::new(BlockId(0), TXNS_PER_BLOCK_MAX as u32);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", TxnId::new(BlockId(3), 9)), "T3.9");
        assert_eq!(format!("{:?}", BlockId(3)), "B3");
    }
}
