//! Workspace-wide error type.
//!
//! Every crate returns [`Result`] for fallible operations; variants are
//! grouped by subsystem so call sites can match on the failure class without
//! depending on the originating crate.

use std::fmt;
use std::io;

/// Errors surfaced by the HarmonyBC stack.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (file-backed disk, log files).
    Io(io::Error),
    /// A durable structure failed integrity verification (checksum, magic,
    /// hash-chain mismatch, …). Carries a human-readable description.
    Corruption(String),
    /// The requested entity does not exist (table, key, block, page).
    NotFound(String),
    /// Caller misuse that is recoverable (e.g. value too large for a page).
    InvalidArgument(String),
    /// A transaction was aborted by the concurrency-control protocol.
    TxnAborted {
        /// Why the protocol aborted it.
        reason: AbortReason,
    },
    /// The storage engine ran out of a bounded resource (buffer frames with
    /// everything pinned, log space, …).
    ResourceExhausted(String),
    /// Consensus-layer failure (no quorum, view-change storm, …).
    Consensus(String),
}

/// Why a concurrency-control protocol aborted a transaction.
///
/// The distinction matters for the paper's false-abort accounting
/// (Figure 13): each protocol aborts on a different dangerous structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Harmony Rule 1: the transaction sits in a backward dangerous
    /// structure of the intra-block rw-subgraph.
    BackwardDangerousStructure,
    /// Harmony Rule 3(ii): an inter-block generalized backward dangerous
    /// structure, resolved against the transaction in the later block.
    InterBlockDangerousStructure,
    /// Aria / RBC first-committer-wins: a ww-dependency on a smaller TID.
    WwConflict,
    /// Aria without reordering / Fabric: read an item overwritten by a
    /// smaller-TID transaction (stale read / raw-dependency).
    StaleRead,
    /// RBC / SSI dangerous structure (pivot with in- and out-conflict).
    SsiDangerousStructure,
    /// Fabric SOV: endorsers returned divergent read-write sets and the
    /// client could not assemble a valid endorsement.
    EndorsementMismatch,
    /// FastFabric#: transaction was dropped by the orderer to bound the
    /// dependency graph, or removed to break a genuine cycle.
    GraphCycle,
    /// Sharded execution: a multi-partition transaction lost the
    /// deterministic cross-shard reservation to an earlier conflicting
    /// multi-partition transaction in the same block.
    CrossShardConflict,
    /// The transaction's own logic aborted (e.g. insufficient balance).
    UserAbort,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::BackwardDangerousStructure => "backward dangerous structure",
            AbortReason::InterBlockDangerousStructure => "inter-block dangerous structure",
            AbortReason::WwConflict => "ww-conflict",
            AbortReason::StaleRead => "stale read",
            AbortReason::SsiDangerousStructure => "SSI dangerous structure",
            AbortReason::EndorsementMismatch => "endorsement mismatch",
            AbortReason::GraphCycle => "dependency-graph cycle",
            AbortReason::CrossShardConflict => "cross-shard conflict",
            AbortReason::UserAbort => "user abort",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::TxnAborted { reason } => write!(f, "transaction aborted: {reason}"),
            Error::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            Error::Consensus(m) => write!(f, "consensus: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<Error> = vec![
            Error::Io(io::Error::other("boom")),
            Error::Corruption("bad page".into()),
            Error::NotFound("table 9".into()),
            Error::InvalidArgument("oversized".into()),
            Error::TxnAborted {
                reason: AbortReason::WwConflict,
            },
            Error::ResourceExhausted("buffer pool".into()),
            Error::Consensus("no quorum".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        fn f() -> Result<()> {
            Err(io::Error::new(io::ErrorKind::NotFound, "x"))?;
            Ok(())
        }
        assert!(matches!(f(), Err(Error::Io(_))));
    }

    #[test]
    fn abort_reasons_distinct_display() {
        use AbortReason::*;
        let all = [
            BackwardDangerousStructure,
            InterBlockDangerousStructure,
            WwConflict,
            StaleRead,
            SsiDangerousStructure,
            EndorsementMismatch,
            GraphCycle,
            CrossShardConflict,
            UserAbort,
        ];
        let mut seen = std::collections::HashSet::new();
        for r in all {
            assert!(seen.insert(r.to_string()), "duplicate display for {r:?}");
        }
    }
}
