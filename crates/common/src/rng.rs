//! Deterministic random number generation.
//!
//! Workload generation and the discrete-event simulator must be bit-for-bit
//! reproducible across runs and platforms, so we implement xoshiro256**
//! seeded through splitmix64 rather than relying on an external generator
//! whose stream may change between versions.

/// Deterministic RNG (xoshiro256**, splitmix64 seeding).
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seed the generator. Equal seeds produce equal streams.
    #[must_use]
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child stream; used to give each replica /
    /// worker / block its own generator without correlation.
    #[must_use]
    pub fn fork(&mut self, tag: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening multiply keeps the distribution unbiased enough for
        // workload generation (bias < 2^-64 * bound).
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(xs.len() as u64) as usize])
        }
    }

    /// Sample an index according to the given non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut r = DetRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut r = DetRng::new(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = DetRng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = DetRng::new(17);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = f64::from(counts[2]) / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DetRng::new(1);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }
}
