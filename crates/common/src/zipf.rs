//! Zipfian distribution sampler (Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases", SIGMOD 1994) — the standard YCSB
//! skew generator.
//!
//! `theta = 0` degenerates to the uniform distribution; `theta → 1` makes a
//! handful of keys absorb most of the probability mass, matching the
//! "skewness" axis of Figures 11–13 in the paper.

use crate::rng::DetRng;

/// Zipfian sampler over `[0, n)` with skew parameter `theta ∈ [0, 1)`.
///
/// The constructor is O(n) (computes the generalized harmonic number); each
/// sample is O(1).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Build a sampler over `n` items with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `theta < 0`, or `theta >= 1`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "zipfian needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of items.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a sample in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(self.n);
        }
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta.mul_add(u, 1.0 - self.eta)).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Probability that a single sample hits rank 0 (the hottest item).
    /// Used by tests and by the hotspot analyses.
    #[must_use]
    pub fn p_hottest(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Kept for diagnostics: the two-item zeta value used in `eta`.
    #[must_use]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A scrambled-Zipfian view: spreads the hot ranks across the key space with
/// a multiplicative hash so "hot" keys are not physically adjacent (YCSB's
/// `scrambled_zipfian`), which matters for page-locality effects in the
/// buffer pool.
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Build a scrambled sampler over `n` items with skew `theta`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Draw a sample in `[0, n)`.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let rank = self.inner.sample(rng);
        // Fibonacci hashing to scatter ranks over the key space.
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.inner.n
    }

    /// Number of items.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.inner.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = DetRng::new(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "max {max} min {min}");
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = DetRng::new(2);
        let hot = (0..100_000).filter(|_| z.sample(&mut rng) < 100).count() as f64 / 100_000.0;
        // With theta=0.99 over 10k keys, the top 1% of ranks absorb the
        // majority of accesses.
        assert!(hot > 0.5, "hot fraction {hot}");
    }

    #[test]
    fn skew_ordering_monotone() {
        // Higher theta => more mass on rank 0.
        let mut prev = 0.0;
        for &theta in &[0.0, 0.4, 0.8, 0.99] {
            let z = Zipfian::new(1000, theta);
            let mut rng = DetRng::new(3);
            let hits = (0..50_000).filter(|_| z.sample(&mut rng) == 0).count() as f64;
            assert!(hits >= prev, "theta {theta} hits {hits} prev {prev}");
            prev = hits;
        }
    }

    #[test]
    fn samples_in_range() {
        for &theta in &[0.0, 0.5, 0.9] {
            let z = Zipfian::new(37, theta);
            let mut rng = DetRng::new(4);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 37);
            }
        }
    }

    #[test]
    fn p_hottest_matches_empirical() {
        let z = Zipfian::new(1000, 0.9);
        let mut rng = DetRng::new(5);
        let hits = (0..200_000).filter(|_| z.sample(&mut rng) == 0).count() as f64 / 200_000.0;
        let predicted = z.p_hottest();
        assert!(
            (hits - predicted).abs() / predicted < 0.25,
            "empirical {hits} predicted {predicted}"
        );
    }

    #[test]
    fn scrambled_stays_in_range_and_skewed() {
        let z = ScrambledZipfian::new(500, 0.9);
        let mut rng = DetRng::new(6);
        let mut counts = vec![0u32; 500];
        for _ in 0..100_000 {
            let v = z.sample(&mut rng) as usize;
            counts[v] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 2_000, "scrambling should preserve skew, max {max}");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_rejected() {
        let _ = Zipfian::new(10, 1.0);
    }
}
