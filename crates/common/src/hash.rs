//! Stable, dependency-free hashing.
//!
//! Keyspace partitioning must agree between the component that *assigns*
//! keys to partitions (the shard router) and the components that *generate*
//! keys with a target partition in mind (the partition-aware workload
//! variants). `std`'s `DefaultHasher` is explicitly unstable across
//! releases, so both sides use this FNV-1a implementation instead: simple,
//! fast on short row keys, and fixed forever.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`. Deterministic across platforms and releases.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(FNV_OFFSET, bytes)
}

/// Continue a 64-bit FNV-1a hash from `seed` over `bytes`.
///
/// `fnv1a64(b)` ≡ `fnv1a64_seeded(FNV-offset, b)`; chaining calls hashes
/// the concatenation of the chunks, which is how composite keys (table id
/// followed by row bytes) fold into one stable digest.
#[must_use]
pub fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`Hasher`](std::hash::Hasher) that passes an already-computed 64-bit
/// hash straight through instead of re-hashing.
///
/// Built for hash-map keys that cache a stable digest at construction
/// (`harmony_txn::Key` caches FNV-1a of table + row): the key's `Hash`
/// impl emits the cached value via `write_u64`, and this hasher uses it
/// verbatim, so map lookups and shard selection never touch the row bytes
/// again. Any other input (the `write` fallback) is FNV-1a-folded, keeping
/// the hasher deterministic for arbitrary key types.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoRehash(u64);

impl std::hash::Hasher for NoRehash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a64_seeded(self.0 ^ FNV_OFFSET, bytes);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// `BuildHasher` for [`NoRehash`] — plug into `HashMap::with_hasher` or a
/// type alias like `HashMap<Key, V, BuildNoRehash>`.
pub type BuildNoRehash = std::hash::BuildHasherDefault<NoRehash>;

/// Logical partition of a dense `u64` id under the canonical hash
/// partitioning: FNV-1a of the big-endian bytes, modulo `partitions`.
///
/// This is the *single* definition the partition-aware workload generators
/// and the shard router's hash partitioner share — `Key::from_u64` encodes
/// row keys big-endian, so hashing `id.to_be_bytes()` here equals hashing
/// the key's row bytes there (pinned by a test in `harmony-shard`).
///
/// # Panics
/// Panics if `partitions == 0`.
#[must_use]
pub fn partition_of_u64(id: u64, partitions: u64) -> u64 {
    fnv1a64(&id.to_be_bytes()) % partitions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seeded_chaining_equals_concatenation() {
        let whole = fnv1a64(b"foobar");
        let chained = fnv1a64_seeded(fnv1a64(b"foo"), b"bar");
        assert_eq!(whole, chained);
    }

    #[test]
    fn no_rehash_passes_u64_through() {
        use std::hash::{BuildHasher, Hasher};
        let mut h = BuildNoRehash::default().build_hasher();
        h.write_u64(0xdead_beef_cafe_f00d);
        assert_eq!(h.finish(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn no_rehash_byte_fallback_is_deterministic_and_spreads() {
        use std::hash::{BuildHasher, Hasher};
        let digest = |bytes: &[u8]| {
            let mut h = BuildNoRehash::default().build_hasher();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_ne!(digest(b"abc"), digest(b"abd"));
    }

    #[test]
    fn distinct_keys_spread() {
        let mut buckets = [0u32; 8];
        for i in 0..1_000u64 {
            buckets[(fnv1a64(&i.to_be_bytes()) % 8) as usize] += 1;
        }
        // Roughly uniform: every bucket populated, none dominating.
        assert!(buckets.iter().all(|&c| c > 60), "{buckets:?}");
        assert!(buckets.iter().all(|&c| c < 250), "{buckets:?}");
    }
}
