//! HMAC-SHA-256 (RFC 2104), built on [`crate::sha256`].

use crate::sha256::{Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        key_block[..32].copy_from_slice(&hashed.0);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(message);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(&inner.0);
    h.finalize()
}

/// Constant-time digest comparison (avoids leaking prefix length through
/// timing when verifying MACs).
#[must_use]
pub fn verify_mac(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.0.iter().zip(actual.0.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let d = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            d.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let d = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            d.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let d = hmac_sha256(&key, &msg);
        assert_eq!(
            d.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test with a key larger than the block size (RFC 4231 case 6).
        let key = [0xaa; 131];
        let d = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            d.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_mac_matches() {
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha256(b"k", b"m");
        let c = hmac_sha256(b"k", b"n");
        assert!(verify_mac(&a, &b));
        assert!(!verify_mac(&a, &c));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"key1", b"m"), hmac_sha256(b"key2", b"m"));
    }
}
