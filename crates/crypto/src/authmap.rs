//! Authenticated key/value map with incremental O(log n) root updates.
//!
//! [`MerkleTree`](crate::MerkleTree) commits to a *fixed* leaf sequence and
//! must be rebuilt from scratch on any change — fine for the transactions of
//! one block, hopeless for a database table that mutates every block. This
//! module provides the maintained counterpart: a Merkle-ized **treap** whose
//! shape is a pure function of the key set (priorities are derived from key
//! hashes, ties broken by key bytes), so the same key/value set always hashes
//! to the same root no matter the insertion or deletion order. Each upsert or
//! remove touches only the expected O(log n) spine from the affected leaf to
//! the root, and any key's presence can be proven with an O(log n) inclusion
//! proof.
//!
//! History independence is what lets the chain layer use one structure for
//! both paths: the incrementally folded commitment a replica maintains block
//! by block, and the full-scan oracle it is audited against, are the same
//! tree bit for bit.

use crate::sha256::{sha256, Digest, Sha256};

/// Domain-separation prefixes, disjoint from the transaction Merkle tree's
/// `0x00`/`0x01` so a map node can never be replayed as a tx-tree node.
const MAP_LEAF_TAG: u8 = 0x02;
const MAP_NODE_TAG: u8 = 0x03;

/// Sentinel "no child" arena index.
const NIL: u32 = u32::MAX;

/// Digest of a key/value pair: `H(0x02 ‖ len(k) ‖ k ‖ len(v) ‖ v)` with
/// little-endian `u32` length prefixes (no boundary ambiguity).
#[must_use]
pub fn leaf_digest(key: &[u8], value: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[MAP_LEAF_TAG]);
    h.update(&u32::try_from(key.len()).unwrap_or(u32::MAX).to_le_bytes());
    h.update(key);
    h.update(&u32::try_from(value.len()).unwrap_or(u32::MAX).to_le_bytes());
    h.update(value);
    h.finalize()
}

/// Digest of an interior node: `H(0x03 ‖ left ‖ leaf ‖ right)` where absent
/// children contribute [`Digest::ZERO`]. Every node carries a live pair, so
/// the node digest binds its own leaf *and* both subtrees.
#[must_use]
pub fn node_digest(left: &Digest, leaf: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[MAP_NODE_TAG]);
    h.update(&left.0);
    h.update(&leaf.0);
    h.update(&right.0);
    h.finalize()
}

/// The conventional root of an empty map (same convention as the empty
/// transaction tree): `sha256("")`.
#[must_use]
pub fn empty_root() -> Digest {
    sha256(b"")
}

struct Node {
    key: Box<[u8]>,
    prio: u64,
    leaf: Digest,
    digest: Digest,
    left: u32,
    right: u32,
}

/// One step of an inclusion proof, bottom-up from the proven node's parent:
/// the parent's own leaf digest, its *other* subtree digest, and which side
/// the running hash entered from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapProofStep {
    /// True if the running hash is the parent's left subtree.
    pub from_left: bool,
    /// The parent's own key/value leaf digest.
    pub ancestor_leaf: Digest,
    /// The parent's other subtree digest (`Digest::ZERO` if absent).
    pub sibling: Digest,
}

/// Inclusion proof for one key/value pair: the proven node's two subtree
/// digests plus the spine up to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapProof {
    /// Left subtree digest of the proven node (`Digest::ZERO` if absent).
    pub left: Digest,
    /// Right subtree digest of the proven node (`Digest::ZERO` if absent).
    pub right: Digest,
    /// Ancestor steps, deepest first.
    pub steps: Vec<MapProofStep>,
}

/// Deterministic authenticated map: treap over key bytes with hash-derived
/// priorities, arena-allocated nodes, maintained subtree digests.
pub struct AuthMap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl Default for AuthMap {
    fn default() -> AuthMap {
        AuthMap::new()
    }
}

impl AuthMap {
    /// Empty map.
    #[must_use]
    pub fn new() -> AuthMap {
        AuthMap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of live key/value pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pairs are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root commitment over the full contents. O(1): digests are maintained
    /// on every mutation.
    #[must_use]
    pub fn root(&self) -> Digest {
        if self.root == NIL {
            empty_root()
        } else {
            self.nodes[self.root as usize].digest
        }
    }

    /// Insert or update a pair; returns true if the key was new. Touches the
    /// expected O(log n) spine only.
    pub fn upsert(&mut self, key: &[u8], value: &[u8]) -> bool {
        let leaf = leaf_digest(key, value);
        let prio = Self::priority(key);
        let mut inserted = false;
        self.root = self.upsert_at(self.root, key, prio, leaf, &mut inserted);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Remove a key; returns true if it was present.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        let mut removed = false;
        self.root = self.remove_at(self.root, key, &mut removed);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// True if `key` is present.
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        let mut at = self.root;
        while at != NIL {
            let node = &self.nodes[at as usize];
            at = match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
            };
        }
        false
    }

    /// Inclusion proof for `key`, or None if absent.
    #[must_use]
    pub fn prove(&self, key: &[u8]) -> Option<MapProof> {
        // Path of (node, went_left) from root to the target.
        let mut path: Vec<(u32, bool)> = Vec::new();
        let mut at = self.root;
        let target = loop {
            if at == NIL {
                return None;
            }
            let node = &self.nodes[at as usize];
            match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => break at,
                std::cmp::Ordering::Less => {
                    path.push((at, true));
                    at = node.left;
                }
                std::cmp::Ordering::Greater => {
                    path.push((at, false));
                    at = node.right;
                }
            }
        };
        let tnode = &self.nodes[target as usize];
        let steps = path
            .iter()
            .rev()
            .map(|&(idx, went_left)| {
                let node = &self.nodes[idx as usize];
                let sibling = if went_left {
                    self.subtree(node.right)
                } else {
                    self.subtree(node.left)
                };
                MapProofStep {
                    from_left: went_left,
                    ancestor_leaf: node.leaf,
                    sibling,
                }
            })
            .collect();
        Some(MapProof {
            left: self.subtree(tnode.left),
            right: self.subtree(tnode.right),
            steps,
        })
    }

    /// Verify an inclusion proof for `(key, value)` against `root`.
    #[must_use]
    pub fn verify(root: &Digest, key: &[u8], value: &[u8], proof: &MapProof) -> bool {
        let mut acc = node_digest(&proof.left, &leaf_digest(key, value), &proof.right);
        for step in &proof.steps {
            acc = if step.from_left {
                node_digest(&acc, &step.ancestor_leaf, &step.sibling)
            } else {
                node_digest(&step.sibling, &step.ancestor_leaf, &acc)
            };
        }
        acc == *root
    }

    /// Priority of a key: the first eight bytes of `sha256(key)`. Collisions
    /// fall back to byte-wise key order (see [`AuthMap::hotter`]), keeping the
    /// shape a pure function of the key set.
    fn priority(key: &[u8]) -> u64 {
        let d = sha256(key);
        u64::from_le_bytes(d.0[..8].try_into().expect("8 bytes"))
    }

    /// Strict heap order: does `a` belong above `b`? Lexicographic on
    /// (priority, key); keys are unique so this is a total order.
    fn hotter(&self, a: u32, b: u32) -> bool {
        let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
        na.prio > nb.prio || (na.prio == nb.prio && na.key > nb.key)
    }

    fn subtree(&self, idx: u32) -> Digest {
        if idx == NIL {
            Digest::ZERO
        } else {
            self.nodes[idx as usize].digest
        }
    }

    fn refresh(&mut self, idx: u32) {
        let (left, right) = {
            let node = &self.nodes[idx as usize];
            (node.left, node.right)
        };
        let digest = node_digest(
            &self.subtree(left),
            &self.nodes[idx as usize].leaf,
            &self.subtree(right),
        );
        self.nodes[idx as usize].digest = digest;
    }

    fn alloc(&mut self, key: &[u8], prio: u64, leaf: Digest) -> u32 {
        let node = Node {
            key: key.into(),
            prio,
            leaf,
            digest: node_digest(&Digest::ZERO, &leaf, &Digest::ZERO),
            left: NIL,
            right: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("arena < 4G nodes");
            self.nodes.push(node);
            idx
        }
    }

    fn upsert_at(
        &mut self,
        at: u32,
        key: &[u8],
        prio: u64,
        leaf: Digest,
        inserted: &mut bool,
    ) -> u32 {
        if at == NIL {
            *inserted = true;
            return self.alloc(key, prio, leaf);
        }
        match key.cmp(&self.nodes[at as usize].key) {
            std::cmp::Ordering::Equal => {
                self.nodes[at as usize].leaf = leaf;
            }
            std::cmp::Ordering::Less => {
                let left = self.nodes[at as usize].left;
                let child = self.upsert_at(left, key, prio, leaf, inserted);
                self.nodes[at as usize].left = child;
                if self.hotter(child, at) {
                    return self.rotate_right(at);
                }
            }
            std::cmp::Ordering::Greater => {
                let right = self.nodes[at as usize].right;
                let child = self.upsert_at(right, key, prio, leaf, inserted);
                self.nodes[at as usize].right = child;
                if self.hotter(child, at) {
                    return self.rotate_left(at);
                }
            }
        }
        self.refresh(at);
        at
    }

    fn remove_at(&mut self, at: u32, key: &[u8], removed: &mut bool) -> u32 {
        if at == NIL {
            return NIL;
        }
        match key.cmp(&self.nodes[at as usize].key) {
            std::cmp::Ordering::Less => {
                let left = self.nodes[at as usize].left;
                let child = self.remove_at(left, key, removed);
                self.nodes[at as usize].left = child;
            }
            std::cmp::Ordering::Greater => {
                let right = self.nodes[at as usize].right;
                let child = self.remove_at(right, key, removed);
                self.nodes[at as usize].right = child;
            }
            std::cmp::Ordering::Equal => {
                *removed = true;
                let (left, right) = {
                    let node = &self.nodes[at as usize];
                    (node.left, node.right)
                };
                self.free.push(at);
                return self.merge(left, right);
            }
        }
        self.refresh(at);
        at
    }

    /// Merge two treaps where every key in `a` precedes every key in `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.hotter(a, b) {
            let right = self.nodes[a as usize].right;
            let merged = self.merge(right, b);
            self.nodes[a as usize].right = merged;
            self.refresh(a);
            a
        } else {
            let left = self.nodes[b as usize].left;
            let merged = self.merge(a, left);
            self.nodes[b as usize].left = merged;
            self.refresh(b);
            b
        }
    }

    /// Rotate `at`'s left child up; returns the new subtree root. Refreshes
    /// both touched nodes.
    fn rotate_right(&mut self, at: u32) -> u32 {
        let x = self.nodes[at as usize].left;
        self.nodes[at as usize].left = self.nodes[x as usize].right;
        self.nodes[x as usize].right = at;
        self.refresh(at);
        self.refresh(x);
        x
    }

    /// Rotate `at`'s right child up; returns the new subtree root.
    fn rotate_left(&mut self, at: u32) -> u32 {
        let x = self.nodes[at as usize].right;
        self.nodes[at as usize].right = self.nodes[x as usize].left;
        self.nodes[x as usize].left = at;
        self.refresh(at);
        self.refresh(x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key-{:06}", i * 7919 % 1_000_000).into_bytes(),
                    format!("val-{i}").into_bytes(),
                )
            })
            .collect()
    }

    fn build(pairs: &[(Vec<u8>, Vec<u8>)]) -> AuthMap {
        let mut m = AuthMap::new();
        for (k, v) in pairs {
            m.upsert(k, v);
        }
        m
    }

    #[test]
    fn empty_map_has_conventional_root() {
        assert_eq!(AuthMap::new().root(), sha256(b""));
        assert!(AuthMap::new().is_empty());
    }

    #[test]
    fn root_is_history_independent() {
        let ps = pairs(257);
        let forward = build(&ps);
        let mut rev = ps.clone();
        rev.reverse();
        let backward = build(&rev);
        // Interleave inserts with deletions of keys that end up absent.
        let mut churn = AuthMap::new();
        for (i, (k, v)) in ps.iter().enumerate() {
            churn.upsert(k, b"stale");
            if i % 3 == 0 {
                churn.upsert(format!("ghost-{i}").as_bytes(), b"x");
            }
            churn.upsert(k, v);
        }
        for i in 0..ps.len() {
            if i % 3 == 0 {
                assert!(churn.remove(format!("ghost-{i}").as_bytes()));
            }
        }
        assert_eq!(forward.root(), backward.root());
        assert_eq!(forward.root(), churn.root());
        assert_eq!(forward.len(), 257);
        assert_eq!(churn.len(), 257);
    }

    #[test]
    fn upsert_changes_root_and_is_value_sensitive() {
        let mut m = build(&pairs(64));
        let before = m.root();
        assert!(!m.upsert(b"key-000000", b"other"));
        assert_ne!(m.root(), before);
        assert!(!m.upsert(b"key-000000", b"val-0"));
        // key-0*7919%1e6 == 0 maps to val-0.
        assert_eq!(m.root(), before);
    }

    #[test]
    fn remove_restores_prior_root() {
        let ps = pairs(100);
        let mut m = build(&ps);
        let before = m.root();
        assert!(m.upsert(b"zzz-extra", b"v"));
        assert_ne!(m.root(), before);
        assert!(m.remove(b"zzz-extra"));
        assert_eq!(m.root(), before);
        assert!(!m.remove(b"zzz-extra"));
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn drain_to_empty_restores_empty_root() {
        let ps = pairs(33);
        let mut m = build(&ps);
        for (k, _) in &ps {
            assert!(m.remove(k));
        }
        assert_eq!(m.root(), empty_root());
        assert!(m.is_empty());
    }

    #[test]
    fn proofs_verify_and_bind_key_value() {
        let ps = pairs(129);
        let m = build(&ps);
        let root = m.root();
        for (k, v) in &ps {
            let proof = m.prove(k).expect("present");
            assert!(AuthMap::verify(&root, k, v, &proof));
            assert!(!AuthMap::verify(&root, k, b"forged", &proof));
            assert!(!AuthMap::verify(&root, b"other-key", v, &proof));
        }
        assert!(m.prove(b"absent").is_none());
    }

    #[test]
    fn tampered_proof_fails() {
        let ps = pairs(64);
        let m = build(&ps);
        let (k, v) = &ps[17];
        let mut proof = m.prove(k).unwrap();
        if let Some(step) = proof.steps.first_mut() {
            step.sibling.0[0] ^= 1;
        } else {
            proof.left.0[0] ^= 1;
        }
        assert!(!AuthMap::verify(&m.root(), k, v, &proof));
    }

    #[test]
    fn leaf_encoding_is_boundary_unambiguous() {
        let mut a = AuthMap::new();
        a.upsert(b"ab", b"c");
        let mut b = AuthMap::new();
        b.upsert(b"a", b"bc");
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn disjoint_from_tx_merkle_domain() {
        // A single-entry map must not collide with a single-leaf tx tree over
        // the same bytes.
        let mut m = AuthMap::new();
        m.upsert(b"payload", b"");
        let t = crate::MerkleTree::build(&[b"payload".as_slice()]);
        assert_ne!(m.root(), t.root());
    }

    #[test]
    fn arena_recycles_freed_slots() {
        let mut m = AuthMap::new();
        for round in 0..3 {
            for i in 0..50u32 {
                m.upsert(format!("k{i}").as_bytes(), format!("r{round}").as_bytes());
            }
            for i in 0..50u32 {
                m.remove(format!("k{i}").as_bytes());
            }
        }
        assert!(m.is_empty());
        assert!(m.nodes.len() <= 50, "arena grew: {}", m.nodes.len());
    }
}
