//! Binary Merkle tree over transaction payloads.
//!
//! Each block header carries the Merkle root of its transactions; the tree
//! also supports inclusion proofs so a light client can verify that a
//! transaction belongs to a block without the full payload.

use crate::sha256::{sha256, Digest, Sha256};

/// Domain-separation prefixes (prevents a leaf being reinterpreted as an
/// interior node — the classic CVE-2012-2459 style ambiguity).
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    h.update(&left.0);
    h.update(&right.0);
    h.finalize()
}

/// A fully materialized Merkle tree (levels bottom-up; level 0 = leaves).
#[derive(Clone, Debug)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>,
}

/// One step of an inclusion proof: the sibling digest and whether the
/// sibling sits to the left of the running hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// Sibling digest.
    pub sibling: Digest,
    /// True if the sibling is the left child.
    pub sibling_is_left: bool,
}

impl MerkleTree {
    /// Build a tree over the given leaf payloads. An empty input yields the
    /// conventional "empty root" `sha256("")`.
    #[must_use]
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![sha256(b"")]],
            };
        }
        let mut levels = Vec::new();
        let mut cur: Vec<Digest> = leaves.iter().map(|l| hash_leaf(l.as_ref())).collect();
        levels.push(cur.clone());
        while cur.len() > 1 {
            let mut next = Vec::with_capacity(cur.len().div_ceil(2));
            for pair in cur.chunks(2) {
                // Odd node is paired with itself (Bitcoin-style duplication).
                let right = pair.get(1).unwrap_or(&pair[0]);
                next.push(hash_node(&pair[0], right));
            }
            levels.push(next.clone());
            cur = next;
        }
        MerkleTree { levels }
    }

    /// The root digest.
    #[must_use]
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty levels")[0]
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0].len() == 1 && self.levels[0][0] == sha256(b"") {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// Produce an inclusion proof for the leaf at `index`.
    #[must_use]
    pub fn prove(&self, index: usize) -> Option<Vec<ProofStep>> {
        if index >= self.levels[0].len() {
            return None;
        }
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = if sibling_idx < level.len() {
                level[sibling_idx]
            } else {
                level[idx] // odd node duplicated
            };
            proof.push(ProofStep {
                sibling,
                sibling_is_left: sibling_idx < idx,
            });
            idx /= 2;
        }
        Some(proof)
    }

    /// Verify an inclusion proof for `payload` against `root`.
    #[must_use]
    pub fn verify(root: &Digest, payload: &[u8], proof: &[ProofStep]) -> bool {
        let mut acc = hash_leaf(payload);
        for step in proof {
            acc = if step.sibling_is_left {
                hash_node(&step.sibling, &acc)
            } else {
                hash_node(&acc, &step.sibling)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("txn-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_conventional_root() {
        let t = MerkleTree::build::<&[u8]>(&[]);
        assert_eq!(t.root(), sha256(b""));
        assert_eq!(t.leaf_count(), 0);
    }

    #[test]
    fn single_leaf_root_is_tagged_leaf_hash() {
        let t = MerkleTree::build(&[b"only".as_slice()]);
        assert_eq!(t.root(), hash_leaf(b"only"));
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let ps = payloads(n);
            let t = MerkleTree::build(&ps);
            for (i, p) in ps.iter().enumerate() {
                let proof = t.prove(i).expect("in range");
                assert!(
                    MerkleTree::verify(&t.root(), p, &proof),
                    "n={n} leaf {i} failed"
                );
            }
        }
    }

    #[test]
    fn wrong_payload_fails() {
        let ps = payloads(8);
        let t = MerkleTree::build(&ps);
        let proof = t.prove(3).unwrap();
        assert!(!MerkleTree::verify(&t.root(), b"txn-4", &proof));
    }

    #[test]
    fn tampered_proof_fails() {
        let ps = payloads(8);
        let t = MerkleTree::build(&ps);
        let mut proof = t.prove(2).unwrap();
        proof[0].sibling.0[0] ^= 1;
        assert!(!MerkleTree::verify(&t.root(), &ps[2], &proof));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let t = MerkleTree::build(&payloads(4));
        assert!(t.prove(4).is_none());
    }

    #[test]
    fn order_sensitivity() {
        let a = MerkleTree::build(&payloads(4)).root();
        let mut rev = payloads(4);
        rev.reverse();
        let b = MerkleTree::build(&rev).root();
        assert_ne!(a, b);
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A tree whose single leaf equals an interior-node encoding must not
        // collide with the two-leaf tree that produced that encoding.
        let two = MerkleTree::build(&payloads(2));
        let l0 = hash_leaf(b"txn-0");
        let l1 = hash_leaf(b"txn-1");
        let mut fake = Vec::new();
        fake.extend_from_slice(&l0.0);
        fake.extend_from_slice(&l1.0);
        let one = MerkleTree::build(&[fake]);
        assert_ne!(two.root(), one.root());
    }
}
