//! Calibrated CPU-cost constants for cryptographic operations.
//!
//! The evaluation models crypto as per-operation CPU time (the paper notes
//! HotStuff's "other CPU overhead such as crypto" as the cause of its minor
//! throughput drop). Defaults approximate Ed25519 on a 2016-era Xeon
//! (E5-2620v4, the paper's default cluster): ~50 µs sign, ~130 µs verify,
//! ~1 µs per SHA-256 block hash. They are plain data so experiments can
//! sweep them.

/// Per-operation virtual CPU costs, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CryptoCost {
    /// Cost of producing one signature.
    pub sign_ns: u64,
    /// Cost of verifying one signature.
    pub verify_ns: u64,
    /// Cost of hashing one transaction payload.
    pub hash_ns: u64,
}

impl Default for CryptoCost {
    fn default() -> Self {
        CryptoCost {
            sign_ns: 50_000,
            verify_ns: 130_000,
            hash_ns: 1_000,
        }
    }
}

impl CryptoCost {
    /// A zero-cost profile for tests that should not accrue virtual time.
    #[must_use]
    pub fn free() -> CryptoCost {
        CryptoCost {
            sign_ns: 0,
            verify_ns: 0,
            hash_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nonzero() {
        let c = CryptoCost::default();
        assert!(c.sign_ns > 0 && c.verify_ns > 0 && c.hash_ns > 0);
        assert!(
            c.verify_ns > c.sign_ns,
            "Ed25519 verify is slower than sign"
        );
    }

    #[test]
    fn free_is_zero() {
        let c = CryptoCost::free();
        assert_eq!((c.sign_ns, c.verify_ns, c.hash_ns), (0, 0, 0));
    }
}
