//! Cryptographic substrate for HarmonyBC.
//!
//! Private blockchains need tamper-evidence (hash-chained blocks, Merkle
//! roots over transactions) and authentication (signatures on endorsements
//! and votes). We implement SHA-256 and HMAC-SHA-256 from scratch — the
//! workspace allows no external crypto crate — and model asymmetric
//! signatures as keyed MACs plus a calibrated CPU-cost constant, which is
//! exactly how crypto enters the paper's evaluation (a per-transaction CPU
//! term; see [`CryptoCost`]).

pub mod authmap;
pub mod cost;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod signer;

pub use authmap::{AuthMap, MapProof, MapProofStep};
pub use cost::CryptoCost;
pub use hmac::hmac_sha256;
pub use merkle::MerkleTree;
pub use sha256::{sha256, Digest, Sha256};
pub use signer::{KeyPair, Signature, Verifier};
