//! Node authentication: signatures modelled as HMAC-SHA-256 under a shared
//! per-identity secret.
//!
//! The paper's blockchains use asymmetric signatures (X.509/ECDSA). Public
//! key crypto is out of scope for this reproduction (no external crates
//! allowed), so we substitute keyed MACs: every node holds a secret derived
//! from its identity and a cluster-wide provisioning secret, and verifiers
//! re-derive it. This gives real in-process tamper-evidence and the same
//! API shape (sign/verify with per-op CPU cost), while the *cost* of
//! asymmetric crypto is modelled separately by [`crate::cost::CryptoCost`].

use harmony_common::vtime;

use crate::hmac::{hmac_sha256, verify_mac};
use crate::sha256::Digest;
use crate::CryptoCost;

/// A signature over a message (a MAC digest plus the signer's id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Identity of the signer.
    pub signer: u64,
    /// The MAC digest.
    pub mac: Digest,
}

/// Signing key held by one node.
#[derive(Clone, Debug)]
pub struct KeyPair {
    id: u64,
    secret: [u8; 32],
    cost: CryptoCost,
}

impl KeyPair {
    /// Derive the key pair for node `id` from the cluster provisioning
    /// secret. All nodes in one deployment share `provision`.
    #[must_use]
    pub fn derive(provision: &[u8], id: u64, cost: CryptoCost) -> KeyPair {
        let mac = hmac_sha256(provision, &id.to_le_bytes());
        KeyPair {
            id,
            secret: mac.0,
            cost,
        }
    }

    /// The node identity this key signs for.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sign a message; charges the configured signing cost to virtual time.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        vtime::charge(self.cost.sign_ns);
        Signature {
            signer: self.id,
            mac: hmac_sha256(&self.secret, message),
        }
    }
}

/// Verifier that can check any node's signature (re-derives node secrets
/// from the provisioning secret, mirroring a CA that can validate all
/// certificates it issued).
#[derive(Clone, Debug)]
pub struct Verifier {
    provision: Vec<u8>,
    cost: CryptoCost,
}

impl Verifier {
    /// Build a verifier for a deployment.
    #[must_use]
    pub fn new(provision: &[u8], cost: CryptoCost) -> Verifier {
        Verifier {
            provision: provision.to_vec(),
            cost,
        }
    }

    /// Verify `sig` over `message`; charges the verification cost.
    #[must_use]
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        vtime::charge(self.cost.verify_ns);
        let secret = hmac_sha256(&self.provision, &sig.signer.to_le_bytes());
        let expect = hmac_sha256(&secret.0, message);
        verify_mac(&expect, &sig.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyPair, Verifier) {
        let cost = CryptoCost::default();
        (
            KeyPair::derive(b"cluster-secret", 7, cost),
            Verifier::new(b"cluster-secret", cost),
        )
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp, v) = setup();
        let sig = kp.sign(b"block 9 header");
        assert!(v.verify(b"block 9 header", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let (kp, v) = setup();
        let sig = kp.sign(b"payload");
        assert!(!v.verify(b"payload!", &sig));
    }

    #[test]
    fn forged_signer_rejected() {
        let (kp, v) = setup();
        let mut sig = kp.sign(b"payload");
        sig.signer = 8; // claim to be another node
        assert!(!v.verify(b"payload", &sig));
    }

    #[test]
    fn wrong_cluster_rejected() {
        let cost = CryptoCost::default();
        let kp = KeyPair::derive(b"cluster-A", 1, cost);
        let v = Verifier::new(b"cluster-B", cost);
        let sig = kp.sign(b"m");
        assert!(!v.verify(b"m", &sig));
    }

    #[test]
    fn signing_charges_vtime() {
        let (kp, v) = setup();
        harmony_common::vtime::take();
        let sig = kp.sign(b"m");
        let signed = harmony_common::vtime::take();
        assert_eq!(signed, CryptoCost::default().sign_ns);
        let _ = v.verify(b"m", &sig);
        assert_eq!(
            harmony_common::vtime::take(),
            CryptoCost::default().verify_ns
        );
    }
}
