//! Per-run JSON timelines: periodic snapshots of a [`Registry`] in
//! virtual time.
//!
//! A timeline is the while-running counterpart to the end-of-run bench
//! artifacts: every `interval_ns` of **simulator virtual time** the
//! cluster records a snapshot of every registered metric, and the result
//! is serialized as one schema-versioned JSON document written next to
//! the `BENCH_*.json` files. Because timestamps come from virtual time
//! and every sampled value is an integer, two runs of the same seed
//! produce **byte-identical** timeline documents — pinned by test.

use crate::registry::{Registry, SampleValue};

/// Schema tag of the timeline JSON document, versioned alongside
/// `harmonybc-bench/v1` and `harmonybc-fig24/v1`.
pub const TIMELINE_SCHEMA: &str = "harmonybc-timeline/v1";

struct Snapshot {
    t_ns: u64,
    /// Pre-rendered JSON array of sample objects (rendered eagerly so a
    /// snapshot reflects the registry at `t_ns`, not at serialization).
    samples_json: String,
}

/// A deterministic per-run metric time series.
pub struct Timeline {
    system: String,
    seed: u64,
    interval_ns: u64,
    snapshots: Vec<Snapshot>,
}

impl Timeline {
    /// Start a timeline for one run of `system` with the given RNG seed
    /// and snapshot interval (virtual nanoseconds).
    #[must_use]
    pub fn new(system: &str, seed: u64, interval_ns: u64) -> Timeline {
        Timeline {
            system: system.to_string(),
            seed,
            interval_ns,
            snapshots: Vec::new(),
        }
    }

    /// Record one snapshot of `registry` at virtual time `t_ns`. A
    /// second record at the same timestamp is ignored, so callers can
    /// unconditionally take a final snapshot at drain end without
    /// worrying about colliding with the last periodic tick.
    pub fn record(&mut self, t_ns: u64, registry: &Registry) {
        if self.snapshots.last().is_some_and(|s| s.t_ns == t_ns) {
            return;
        }
        self.snapshots.push(Snapshot {
            t_ns,
            samples_json: render_samples(registry),
        });
    }

    /// Number of snapshots recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if no snapshot has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Serialize the whole timeline as one JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "harmonybc-timeline/v1",
    ///   "system": "harmony",
    ///   "seed": 24078,
    ///   "interval_ns": 5000000,
    ///   "snapshots": [
    ///     {"t_ns": 5000000,
    ///      "samples": [
    ///        {"name": "harmony_mempool_depth", "labels": {}, "type": "gauge", "value": 12},
    ///        {"name": "harmony_replica_commit_latency_ns", "labels": {"replica": "0"},
    ///         "type": "histogram", "count": 96, "sum": 480000000,
    ///         "buckets": [{"le": 250000, "n": 0}, ...]}
    ///      ]}
    ///   ]
    /// }
    /// ```
    ///
    /// All values are integers; the document ends with a newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", TIMELINE_SCHEMA);
        let _ = writeln!(out, "  \"system\": \"{}\",", escape_json(&self.system));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"interval_ns\": {},", self.interval_ns);
        out.push_str("  \"snapshots\": [\n");
        for (i, snap) in self.snapshots.iter().enumerate() {
            let comma = if i + 1 < self.snapshots.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"t_ns\": {}, \"samples\": [{}]}}{comma}",
                snap.t_ns, snap.samples_json
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn render_samples(registry: &Registry) -> String {
    use std::fmt::Write as _;
    let samples = registry.samples();
    let mut out = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"labels\": {{",
            escape_json(&s.name)
        );
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}, ");
        match &s.value {
            SampleValue::Counter(v) => {
                let _ = write!(out, "\"type\": \"counter\", \"value\": {v}");
            }
            SampleValue::Gauge(v) => {
                let _ = write!(out, "\"type\": \"gauge\", \"value\": {v}");
            }
            SampleValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                    h.count, h.sum
                );
                for (j, (bound, n)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{{\"le\": {bound}, \"n\": {n}}}");
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_registry() -> Registry {
        let r = Registry::new();
        r.counter_with("admits_total", "Admits.", &[("cause", "ok")])
            .add(5);
        r.gauge("depth", "Depth.").set(3);
        let h = r.histogram("lat_ns", "Latency.", &[10, 100]);
        h.observe(7);
        h.observe(500);
        r
    }

    #[test]
    fn timeline_json_has_schema_and_snapshots() {
        let r = populated_registry();
        let mut t = Timeline::new("harmony", 42, 1_000);
        t.record(1_000, &r);
        t.record(2_000, &r);
        let json = t.to_json();
        assert!(json.contains("\"schema\": \"harmonybc-timeline/v1\""));
        assert!(json.contains("\"system\": \"harmony\""));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"t_ns\": 1000"));
        assert!(json.contains("\"t_ns\": 2000"));
        assert!(json.contains(
            "{\"name\": \"admits_total\", \"labels\": {\"cause\": \"ok\"}, \
             \"type\": \"counter\", \"value\": 5}"
        ));
        assert!(json.contains("\"type\": \"gauge\", \"value\": 3"));
        assert!(json.contains(
            "\"type\": \"histogram\", \"count\": 2, \"sum\": 507, \
             \"buckets\": [{\"le\": 10, \"n\": 1}, {\"le\": 100, \"n\": 1}]"
        ));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_timestamp_is_ignored() {
        let r = populated_registry();
        let mut t = Timeline::new("harmony", 1, 500);
        t.record(500, &r);
        t.record(500, &r);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn snapshots_capture_values_at_record_time() {
        let r = Registry::new();
        let c = r.counter("x_total", "X.");
        let mut t = Timeline::new("s", 0, 1);
        c.inc();
        t.record(1, &r);
        c.add(10);
        t.record(2, &r);
        let json = t.to_json();
        assert!(json.contains("\"value\": 1"));
        assert!(json.contains("\"value\": 11"));
    }

    #[test]
    fn same_content_renders_identical_bytes() {
        let build = || {
            let r = populated_registry();
            let mut t = Timeline::new("harmony", 7, 1_000);
            t.record(1_000, &r);
            t.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn empty_timeline_is_valid_json_shape() {
        let t = Timeline::new("s", 0, 1);
        assert!(t.is_empty());
        let json = t.to_json();
        assert!(json.contains("\"snapshots\": [\n  ]"));
    }
}
