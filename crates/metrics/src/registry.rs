//! The metric registry: interned handles over atomic cells.
//!
//! Registration (name, help, label set) happens once at setup time and
//! takes a lock; the returned handle is an `Arc` around the atomic cell,
//! so every subsequent increment/observe is lock-free and allocation-free.
//! Registering the same `(name, label values)` twice returns a handle to
//! the **same** cell — which is what lets legacy stats structs (e.g. the
//! mempool's `MempoolStats`) become thin views over the registry instead
//! of a second, disagreement-prone set of counters.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (still fully functional —
    /// used by components constructed without an observability plane).
    #[must_use]
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, buffer size).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    #[must_use]
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Set the absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is larger than the current value —
    /// high-water-mark semantics.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Strictly increasing upper bounds; an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Box<[u64]>,
    /// One count per bound plus the overflow (`+Inf`) bucket.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (virtual
/// nanoseconds, sizes, set cardinalities). Buckets are fixed at
/// registration, so observation is a short bound scan plus three relaxed
/// atomic adds — no allocation, no lock.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// A histogram with the given bucket bounds, not attached to any
    /// registry. Bounds must be strictly increasing.
    #[must_use]
    pub fn detached(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCell {
            bounds: bounds.into(),
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.observe_n(v, 1);
    }

    /// Record `n` identical observations (one bucket update instead of a
    /// loop — used when a block's mean latency stands in for its
    /// transactions).
    pub fn observe_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let cell = &self.0;
        let idx = cell
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(cell.bounds.len());
        cell.buckets[idx].fetch_add(n, Ordering::Relaxed);
        cell.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        cell.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let cell = &self.0;
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(cell.bounds.len());
        for (i, bound) in cell.bounds.iter().enumerate() {
            cumulative += cell.buckets[i].load(Ordering::Relaxed);
            buckets.push((*bound, cumulative));
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A point-in-time view of one histogram: cumulative bucket counts (the
/// Prometheus `le` convention; the `+Inf` bucket is `count`), plus sum
/// and count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)` per configured bucket.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of all observations.
    pub sum: u64,
    /// Total observations (== the implicit `+Inf` cumulative count).
    pub count: u64,
}

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Child {
    /// Label values, parallel to the family's `label_names`.
    values: Vec<String>,
    cell: Cell,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    label_names: Vec<String>,
    /// Histogram families share one bound set across children.
    bounds: Vec<u64>,
    children: Vec<Child>,
}

/// One sampled series, as emitted into the timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric (family) name.
    pub name: String,
    /// `(label name, label value)` pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value part of a [`Sample`]. Integers only — float formatting is a
/// determinism hazard the timeline refuses to take.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// The metric catalog: families of counters, gauges, and histograms,
/// shareable across threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter with the given static label set.
    /// Re-registering the same `(name, values)` returns the same cell.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind or with
    /// different label names — a programming error in the catalog.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.intern(name, help, MetricKind::Counter, labels, &[], || {
            Cell::Counter(Counter::detached())
        });
        match cell {
            Cell::Counter(c) => c,
            _ => unreachable!("interned kind checked"),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge with the given static label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.intern(name, help, MetricKind::Gauge, labels, &[], || {
            Cell::Gauge(Gauge::detached())
        });
        match cell {
            Cell::Gauge(g) => g,
            _ => unreachable!("interned kind checked"),
        }
    }

    /// Register (or fetch) an unlabeled histogram with fixed bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Register (or fetch) a histogram with fixed bounds and a static
    /// label set. All children of one family share the bound set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let cell = self.intern(name, help, MetricKind::Histogram, labels, bounds, || {
            Cell::Histogram(Histogram::detached(bounds))
        });
        match cell {
            Cell::Histogram(h) => h,
            _ => unreachable!("interned kind checked"),
        }
    }

    fn intern(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: &[u64],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let label_names: Vec<&str> = labels.iter().map(|(k, _)| *k).collect();
        let values: Vec<String> = labels.iter().map(|(_, v)| (*v).to_string()).collect();
        let mut families = self.inner.lock().expect("registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(f.kind, kind, "metric {name} re-registered as another kind");
                assert_eq!(
                    f.label_names, label_names,
                    "metric {name} re-registered with different label names"
                );
                assert_eq!(
                    f.bounds, bounds,
                    "histogram {name} re-registered with different bounds"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    label_names: label_names.iter().map(|s| (*s).to_string()).collect(),
                    bounds: bounds.to_vec(),
                    children: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(child) = family.children.iter().find(|c| c.values == values) {
            return child.cell.clone();
        }
        let cell = make();
        family.children.push(Child {
            values,
            cell: cell.clone(),
        });
        cell
    }

    /// Sample every registered series, sorted by `(name, label values)` —
    /// the canonical order both render paths share, so two registries
    /// built by identical runs emit identical bytes.
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        let families = self.inner.lock().expect("registry lock");
        let mut out = Vec::new();
        for f in families.iter() {
            for c in &f.children {
                let labels = f
                    .label_names
                    .iter()
                    .zip(&c.values)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let value = match &c.cell {
                    Cell::Counter(cell) => SampleValue::Counter(cell.get()),
                    Cell::Gauge(cell) => SampleValue::Gauge(cell.get()),
                    Cell::Histogram(cell) => SampleValue::Histogram(cell.snapshot()),
                };
                out.push(Sample {
                    name: f.name.clone(),
                    labels,
                    value,
                });
            }
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP`/`# TYPE` headers, escaped label
    /// values, cumulative histogram buckets with the implicit `+Inf`,
    /// and `_sum`/`_count` series. An empty registry renders as an empty
    /// string. Families are sorted by name, children by label values.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let families = self.inner.lock().expect("registry lock");
        let mut order: Vec<&Family> = families.iter().collect();
        order.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        for f in order {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.exposition_name());
            let mut children: Vec<&Child> = f.children.iter().collect();
            children.sort_by(|a, b| a.values.cmp(&b.values));
            for c in children {
                let base = render_labels(&f.label_names, &c.values, None);
                match &c.cell {
                    Cell::Counter(cell) => {
                        let _ = writeln!(out, "{}{} {}", f.name, base, cell.get());
                    }
                    Cell::Gauge(cell) => {
                        let _ = writeln!(out, "{}{} {}", f.name, base, cell.get());
                    }
                    Cell::Histogram(cell) => {
                        let snap = cell.snapshot();
                        for (bound, cumulative) in &snap.buckets {
                            let le =
                                render_labels(&f.label_names, &c.values, Some(&bound.to_string()));
                            let _ = writeln!(out, "{}_bucket{} {}", f.name, le, cumulative);
                        }
                        let inf = render_labels(&f.label_names, &c.values, Some("+Inf"));
                        let _ = writeln!(out, "{}_bucket{} {}", f.name, inf, snap.count);
                        let _ = writeln!(out, "{}_sum{} {}", f.name, base, snap.sum);
                        let _ = writeln!(out, "{}_count{} {}", f.name, base, snap.count);
                    }
                }
            }
        }
        out
    }
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape HELP text: backslash and line feed (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Render a `{k="v",...}` label block, optionally with a trailing `le`
/// label (histogram buckets). Empty label set renders as nothing.
fn render_labels(names: &[String], values: &[String], le: Option<&str>) -> String {
    if names.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = names
        .iter()
        .zip(values)
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert_eq!(r.render_prometheus(), "");
        assert!(r.samples().is_empty());
    }

    #[test]
    fn counters_and_gauges_expose_help_type_and_values() {
        let r = Registry::new();
        let c = r.counter_with("requests_total", "Requests served.", &[("path", "range")]);
        c.add(3);
        let g = r.gauge("depth", "Queue depth.");
        g.set(7);
        g.add(-2);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP requests_total Requests served."));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{path=\"range\"} 3"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("\ndepth 5\n"));
    }

    #[test]
    fn interning_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter_with("x_total", "X.", &[("cause", "gap")]);
        let b = r.counter_with("x_total", "X.", &[("cause", "gap")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles hit one cell");
        let other = r.counter_with("x_total", "X.", &[("cause", "dup")]);
        assert_eq!(other.get(), 0, "different label values are distinct");
    }

    #[test]
    #[should_panic(expected = "re-registered as another kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "M.");
        r.gauge("m", "M.");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("esc_total", "Esc.", &[("v", "a\\b\"c\nd")])
            .inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("esc_total{v=\"a\\\\b\\\"c\\nd\"} 1"),
            "escaping: {text}"
        );
        // The rendered line must stay a single line.
        assert!(text.lines().any(|l| l.starts_with("esc_total{")));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_sum_count() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", "Latency.", &[10, 100, 1_000]);
        for v in [5, 7, 50, 5_000] {
            h.observe(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"1000\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_ns_sum 5062"));
        assert!(text.contains("lat_ns_count 4"));
        // Invariants: +Inf == count, buckets monotone.
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5062);
    }

    #[test]
    fn histogram_boundary_observation_lands_in_its_bucket() {
        let h = Histogram::detached(&[10, 20]);
        h.observe(10); // exactly on the bound: le="10" includes it
        h.observe_n(21, 3); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(10, 1), (20, 1)]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 10 + 3 * 21);
    }

    #[test]
    fn samples_are_sorted_canonically() {
        let r = Registry::new();
        r.counter_with("b_total", "B.", &[("i", "1")]).inc();
        r.counter_with("a_total", "A.", &[("i", "2")]).inc();
        r.counter_with("a_total", "A.", &[("i", "10")]).inc();
        let names: Vec<String> = r
            .samples()
            .iter()
            .map(|s| format!("{}{}", s.name, s.labels[0].1))
            .collect();
        // Lexicographic on label values: "1" < "10" < "2".
        assert_eq!(names, ["a_total10", "a_total2", "b_total1"]);
    }
}
