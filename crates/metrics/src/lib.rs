//! **harmony-metrics** — the production observability plane.
//!
//! A system meant for heavy traffic is blind if its only output is an
//! end-of-run struct: overload, resharding dips, and state-sync storms
//! are invisible until the run ends. This crate provides the missing
//! while-running view as three small pieces:
//!
//! * [`Registry`] — a lock-cheap catalog of [`Counter`]s, [`Gauge`]s,
//!   and fixed-bucket [`Histogram`]s with **static label sets**. Handles
//!   are interned once at registration time; the hot increment path is a
//!   single relaxed atomic operation with **no allocation** and no lock.
//! * **Prometheus text exposition** ([`Registry::render_prometheus`]) —
//!   the standard `# HELP`/`# TYPE` text format with correct label-value
//!   escaping, cumulative histogram buckets (including the implicit
//!   `+Inf` bucket), and `_sum`/`_count` series.
//! * [`Timeline`] — a per-run JSON time series: periodic snapshots of
//!   every registered metric, stamped in **virtual time** so that two
//!   runs of the same seed produce byte-identical timelines. The schema
//!   is versioned ([`TIMELINE_SCHEMA`]) like the `harmonybc-bench/v1`
//!   artifacts it sits next to.
//!
//! Determinism is a hard requirement, not an aspiration: nothing in this
//! crate reads a wall clock, samples are integers only (no float
//! formatting jitter), and both render paths emit metrics in a canonical
//! sorted order. The cells themselves are plain atomics, so the registry
//! is also safe to share across real threads when the simulator is
//! replaced by a live transport.

pub mod registry;
pub mod timeline;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry, Sample, SampleValue,
};
pub use timeline::{Timeline, TIMELINE_SCHEMA};

/// Build `count` exponentially growing histogram bucket bounds starting
/// at `start` and doubling each step — the standard shape for latency
/// histograms in virtual nanoseconds.
///
/// ```
/// assert_eq!(harmony_metrics::doubling_buckets(1_000, 4), [1_000, 2_000, 4_000, 8_000]);
/// ```
#[must_use]
pub fn doubling_buckets(start: u64, count: usize) -> Vec<u64> {
    assert!(start > 0, "bucket bounds must be positive");
    (0..count as u32)
        .map(|i| start.saturating_mul(1u64 << i))
        .collect()
}
