//! Smoke test: every `EngineKind` end-to-end through `run_experiment` on a
//! tiny YCSB run — each of the five systems must load the workload,
//! execute blocks, and commit transactions.

use harmony_core::HarmonyConfig;
use harmony_sim::{run_experiment, EngineKind, RunConfig};
use harmony_storage::StorageConfig;
use harmony_workloads::{Ycsb, YcsbConfig};

fn tiny_run() -> RunConfig {
    RunConfig {
        blocks: 3,
        block_size: 8,
        workers: 2,
        storage: StorageConfig::memory(),
        seed: 0xC0FFEE,
        retry_aborts: true,
    }
}

fn tiny_ycsb() -> Ycsb {
    Ycsb::new(YcsbConfig {
        keys: 200,
        theta: 0.5,
        ..YcsbConfig::default()
    })
}

#[test]
fn every_engine_commits_on_tiny_ycsb() {
    let engines = [
        EngineKind::Harmony(HarmonyConfig::default()),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
        EngineKind::FastFabric,
    ];
    for kind in engines {
        let name = kind.name();
        let mut workload = tiny_ycsb();
        let metrics = run_experiment(kind, &mut workload, &tiny_run())
            .unwrap_or_else(|e| panic!("{name}: run_experiment failed: {e}"));
        assert!(
            metrics.stats.committed > 0,
            "{name}: expected committed transactions, got 0"
        );
        assert!(
            metrics.throughput_tps > 0.0,
            "{name}: expected nonzero throughput"
        );
    }
}
