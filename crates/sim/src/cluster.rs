//! Cluster-level composition: DB layer × consensus layer.
//!
//! The paper's replica-count and geo-distribution figures (15–18) measure
//! how the *end-to-end* system scales: OE chains ship small transaction
//! commands and their replicas work independently (flat scaling), while
//! SOV chains ship full read-write sets whose fan-out eats the ordering
//! service's bandwidth (degrading scaling). Consensus throughput/latency
//! envelopes come from the real HotStuff/Kafka simulations.

use std::borrow::Cow;

use harmony_consensus::net::LatencyModel;
use harmony_consensus::{ConsensusReport, HotStuffConfig, HotStuffSim, KafkaConfig, KafkaSim};
use harmony_dcc_baselines::Architecture;

use crate::driver::RunMetrics;

/// End-to-end metrics for one (system, cluster) point.
#[derive(Clone, Debug)]
pub struct ClusterMetrics {
    /// System name. Borrowed for the plain engines; owned for composed
    /// configurations (e.g. `"HarmonyBC×8shards"`) labelling their own
    /// series.
    pub system: Cow<'static, str>,
    /// Number of replicas.
    pub replicas: usize,
    /// End-to-end committed throughput (min of DB layer and ordering).
    pub throughput_tps: f64,
    /// End-to-end latency: ordering + database processing (ms).
    pub latency_ms: f64,
    /// The consensus layer's own envelope.
    pub consensus: ConsensusReport,
}

/// Consensus options for the cluster model.
#[derive(Clone, Debug)]
pub enum ClusterModel {
    /// Kafka-style CFT ordering service.
    Kafka {
        /// Network model.
        latency: LatencyModel,
    },
    /// Chained HotStuff BFT (consensus nodes = replicas).
    HotStuff {
        /// Network model.
        latency: LatencyModel,
    },
}

impl ClusterModel {
    /// Compose a DB-layer measurement with the ordering layer for a
    /// cluster of `replicas` nodes.
    ///
    /// `txn_bytes` is what the ordering service ships per transaction:
    /// ~128 B commands for OE; the full read-write set (~1.3 KiB for
    /// 10-operation transactions) for SOV.
    #[must_use]
    pub fn compose(
        &self,
        db: &RunMetrics,
        arch: Architecture,
        replicas: usize,
        block_txns: u64,
    ) -> ClusterMetrics {
        let txn_bytes = per_txn_bytes(arch);
        // The ordering service batches independently of the execution
        // block size (many DB blocks per consensus instance), so its
        // batches are large; WAN rounds would otherwise starve it.
        let consensus_batch = block_txns.max(4_000);
        // 6 s of simulated consensus time.
        let duration = 6_000_000_000;
        // The sender-side serialization cost tracks the network model's
        // per-byte bandwidth term (the ordering node's NIC is the shared
        // resource the fan-out saturates).
        let tx_ns_per_byte = ns_per_byte_of(self).max(1);
        let consensus = match self {
            ClusterModel::Kafka { latency } => KafkaSim::new(KafkaConfig {
                replicas,
                block_txns: consensus_batch,
                txn_bytes,
                tx_ns_per_byte,
                latency: latency.clone(),
                ..KafkaConfig::default()
            })
            .run(duration),
            ClusterModel::HotStuff { latency } => HotStuffSim::new(HotStuffConfig {
                nodes: replicas.max(4),
                block_txns: consensus_batch,
                txn_bytes,
                tx_ns_per_byte,
                timeout_ns: 8_000_000_000,
                latency: latency.clone(),
                ..HotStuffConfig::default()
            })
            .run(duration),
        };
        // SOV pays an extra client round trip (simulate → client → order).
        let client_trips_ms = match arch {
            Architecture::Sov => 2.0 * first_hop_ms(self),
            Architecture::Oe => 0.0,
        };
        let throughput_tps = db.throughput_tps.min(consensus.throughput_tps);
        ClusterMetrics {
            system: db.system.clone(),
            replicas,
            throughput_tps,
            latency_ms: db.latency_ms + consensus.latency_ms + client_trips_ms,
            consensus,
        }
    }
}

/// Bytes the ordering service ships per transaction for each architecture.
///
/// OE ships the bare transaction command; SOV ships the full endorsed
/// read-write set — keys, versions, written values and the endorsers'
/// certificates/signatures (~6 KiB for a 10-operation transaction with two
/// endorsements, in line with Fabric proposal-response sizes).
#[must_use]
pub fn per_txn_bytes(arch: Architecture) -> u64 {
    match arch {
        Architecture::Oe => 128,
        Architecture::Sov => 6_144,
    }
}

fn ns_per_byte_of(model: &ClusterModel) -> u64 {
    let latency = match model {
        ClusterModel::Kafka { latency } | ClusterModel::HotStuff { latency } => latency,
    };
    match latency {
        harmony_consensus::net::LatencyModel::Lan { ns_per_byte, .. }
        | harmony_consensus::net::LatencyModel::Wan { ns_per_byte, .. } => *ns_per_byte,
    }
}

fn first_hop_ms(model: &ClusterModel) -> f64 {
    let latency = match model {
        ClusterModel::Kafka { latency } | ClusterModel::HotStuff { latency } => latency,
    };
    latency.delay_ns(0, 1, 1_000) as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::BlockStats;

    fn db(tps: f64, latency_ms: f64) -> RunMetrics {
        RunMetrics {
            system: Cow::Borrowed("HarmonyBC"),
            throughput_tps: tps,
            latency_ms,
            stats: BlockStats::default(),
            ..RunMetrics::default()
        }
    }

    #[test]
    fn db_layer_is_the_bottleneck() {
        // Figure 1's claim: consensus throughput >> DB throughput, so the
        // end-to-end rate equals the DB rate.
        let model = ClusterModel::Kafka {
            latency: LatencyModel::lan_1g(),
        };
        let m = model.compose(&db(8_000.0, 20.0), Architecture::Oe, 4, 250);
        assert!(m.consensus.throughput_tps > 20_000.0, "{m:?}");
        assert!((m.throughput_tps - 8_000.0).abs() < 1.0);
    }

    #[test]
    fn sov_fanout_degrades_with_replicas() {
        // The Figure 15/16 shape: with a realistic DB-layer rate, OE
        // end-to-end throughput is flat in the replica count (small
        // command messages never become the bottleneck), while SOV's
        // read-write-set fan-out drops below the DB rate at large N.
        let model = ClusterModel::Kafka {
            latency: LatencyModel::lan_5g(),
        };
        let db_layer = db(7_000.0, 10.0);
        let oe_few = model.compose(&db_layer, Architecture::Oe, 4, 100);
        let oe_many = model.compose(&db_layer, Architecture::Oe, 80, 100);
        assert!(
            (oe_many.throughput_tps - oe_few.throughput_tps).abs() < 200.0,
            "OE must stay flat: few={oe_few:?} many={oe_many:?}"
        );
        let sov_few = model.compose(&db_layer, Architecture::Sov, 4, 100);
        let sov_many = model.compose(&db_layer, Architecture::Sov, 80, 100);
        assert!(
            sov_many.throughput_tps < sov_few.throughput_tps * 0.7,
            "SOV must degrade: few={sov_few:?} many={sov_many:?}"
        );
    }

    #[test]
    fn hotstuff_wan_latency_grows() {
        let lan = ClusterModel::HotStuff {
            latency: LatencyModel::lan_5g(),
        };
        let wan = ClusterModel::HotStuff {
            latency: LatencyModel::wan_4_continents(),
        };
        let m_lan = lan.compose(&db(8_000.0, 20.0), Architecture::Oe, 8, 250);
        let m_wan = wan.compose(&db(8_000.0, 20.0), Architecture::Oe, 8, 250);
        assert!(
            m_wan.latency_ms > 2.0 * m_lan.latency_ms,
            "lan={m_lan:?} wan={m_wan:?}"
        );
        // Throughput stays DB-bound even on the WAN (the Figure 17 claim).
        assert!((m_wan.throughput_tps - 8_000.0).abs() < 500.0, "{m_wan:?}");
    }

    #[test]
    fn sov_pays_client_round_trips() {
        let model = ClusterModel::Kafka {
            latency: LatencyModel::lan_1g(),
        };
        let sov = model.compose(&db(5_000.0, 10.0), Architecture::Sov, 4, 100);
        let oe = model.compose(&db(5_000.0, 10.0), Architecture::Oe, 4, 100);
        assert!(sov.latency_ms > oe.latency_ms);
    }
}
