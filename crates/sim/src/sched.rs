//! Deterministic task scheduling on virtual worker cores.

use harmony_dcc_baselines::ProtocolBlockResult;

/// Virtual-time profile of one executed block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BlockSchedule {
    /// Makespan of the parallel simulation step on `W` cores.
    pub sim_ns: u64,
    /// Makespan of the commit step (serial sum or parallel makespan).
    pub commit_ns: u64,
    /// Centralized ordering-service work (FastFabric# graph traversal).
    pub orderer_ns: u64,
    /// Total CPU-work in the block (for utilization accounting).
    pub work_ns: u64,
    /// CPU-work of the pre-commit stage (orderer + simulation).
    pub pre_work_ns: u64,
    /// CPU-work of the commit stage.
    pub commit_work_ns: u64,
}

impl BlockSchedule {
    /// Non-pipelined wall time of the block.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.orderer_ns + self.sim_ns + self.commit_ns
    }
}

/// Greedy list-scheduling makespan: tasks assigned in index order to the
/// least-loaded of `workers` cores. Deterministic; within 2× of optimal
/// (Graham's bound), which is plenty for shape-level reproduction.
#[must_use]
pub fn makespan(tasks: &[u64], workers: usize) -> u64 {
    assert!(workers > 0);
    let mut load = vec![0u64; workers];
    for &t in tasks {
        let min = load
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .expect("workers > 0");
        load[min] += t;
    }
    load.into_iter().max().unwrap_or(0)
}

/// Schedule one block's costs onto `workers` cores.
#[must_use]
pub fn schedule_block(
    result: &ProtocolBlockResult,
    workers: usize,
    commit_serial: bool,
) -> BlockSchedule {
    let sim_ns = makespan(&result.sim_ns, workers);
    let commit_ns = if commit_serial {
        result.commit_ns.iter().sum()
    } else {
        makespan(&result.commit_ns, workers)
    };
    let sim_work: u64 = result.sim_ns.iter().sum();
    let commit_work: u64 = result.commit_ns.iter().sum();
    BlockSchedule {
        sim_ns,
        commit_ns,
        orderer_ns: result.orderer_ns,
        work_ns: sim_work + commit_work + result.orderer_ns,
        pre_work_ns: sim_work + result.orderer_ns,
        commit_work_ns: commit_work,
    }
}

/// Total wall time of a sequence of blocks.
///
/// * `depth = 1`: strictly sequential — `Σ (orderer + sim + commit)`.
/// * `depth = 2` (inter-block parallelism): block `i+1`'s pre-commit stage
///   (orderer + simulation) overlaps block `i`'s commit on the *same* `W`
///   worker cores, so each overlapped step takes
///   `max(Bᵢ, Aᵢ₊₁, (work(Bᵢ) + work(Aᵢ₊₁)) / W)` — the capacity term
///   keeps utilization physical while still hiding stragglers.
#[must_use]
pub fn pipeline_total_ns(blocks: &[BlockSchedule], depth: usize, workers: usize) -> u64 {
    if blocks.is_empty() {
        return 0;
    }
    match depth {
        0 | 1 => blocks.iter().map(BlockSchedule::total_ns).sum(),
        _ => {
            let a = |b: &BlockSchedule| b.orderer_ns + b.sim_ns;
            let mut total = a(&blocks[0]);
            for w in blocks.windows(2) {
                let capacity = (w[0].commit_work_ns + w[1].pre_work_ns).div_ceil(workers as u64);
                total += w[0].commit_ns.max(a(&w[1])).max(capacity);
            }
            total += blocks.last().expect("non-empty").commit_ns;
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_balances() {
        assert_eq!(makespan(&[10, 10, 10, 10], 2), 20);
        assert_eq!(makespan(&[40, 10, 10, 10], 2), 40);
        assert_eq!(makespan(&[5; 8], 8), 5);
        assert_eq!(makespan(&[], 4), 0);
    }

    #[test]
    fn makespan_single_worker_is_sum() {
        assert_eq!(makespan(&[3, 4, 5], 1), 12);
    }

    fn sched(sim: u64, commit: u64, orderer: u64) -> BlockSchedule {
        BlockSchedule {
            sim_ns: sim,
            commit_ns: commit,
            orderer_ns: orderer,
            work_ns: sim + commit + orderer,
            pre_work_ns: sim + orderer,
            commit_work_ns: commit,
        }
    }

    #[test]
    fn sequential_pipeline_is_sum() {
        let blocks = vec![sched(10, 5, 0), sched(10, 5, 0)];
        assert_eq!(pipeline_total_ns(&blocks, 1, 8), 30);
    }

    #[test]
    fn depth2_overlaps_sim_with_commit() {
        // A=10, B=5 each: total = 10 + max(5,10) + 5 = 25 < 30.
        let blocks = vec![sched(10, 5, 0), sched(10, 5, 0)];
        assert_eq!(pipeline_total_ns(&blocks, 2, 8), 25);
    }

    #[test]
    fn depth2_straggler_hidden() {
        // Block 1 has a straggler-heavy commit (20); block 2's sim (15)
        // hides inside it.
        let blocks = vec![sched(10, 20, 0), sched(15, 5, 0)];
        // Sequential: 10+20+15+5 = 50. Pipelined: 10 + max(20,15) + 5 = 35.
        assert_eq!(pipeline_total_ns(&blocks, 1, 8), 50);
        assert_eq!(pipeline_total_ns(&blocks, 2, 8), 35);
    }

    #[test]
    fn orderer_stage_counts_in_prestage() {
        let blocks = vec![sched(10, 5, 7), sched(10, 5, 7)];
        assert_eq!(pipeline_total_ns(&blocks, 1, 8), 44);
        assert_eq!(pipeline_total_ns(&blocks, 2, 8), 17 + 17 + 5);
    }

    #[test]
    fn depth2_capacity_bounds_overlap() {
        // One worker: the overlap cannot exceed physical capacity —
        // utilization stays ≤ 1.
        let blocks = vec![sched(10, 10, 0), sched(10, 10, 0)];
        let wall = pipeline_total_ns(&blocks, 2, 1);
        let work: u64 = blocks.iter().map(|b| b.work_ns).sum();
        assert!(wall >= work, "wall {wall} < work {work}");
    }
}
