//! Virtual-time performance model.
//!
//! Protocols execute *for real* (real aborts, real buffer-pool state, real
//! dependency structures); only elapsed time is virtual: every costed
//! operation reports nanoseconds (`harmony_common::vtime`), and this crate
//! turns per-transaction costs into block makespans and end-to-end
//! throughput/latency:
//!
//! * [`sched`] — deterministic list-scheduling of simulation/commit tasks
//!   onto `W` worker cores, serial-commit stages, centralized orderer
//!   stages, and the 2-deep pipeline overlap of inter-block parallelism.
//! * [`driver`] — runs (engine × workload) for N blocks with abort-retry
//!   requeueing and produces the paper's metrics (throughput, latency,
//!   abort rate, CPU utilization, I/O counters).
//! * [`cluster`] — composes DB-layer metrics with the consensus layer's
//!   throughput/latency envelopes for the replica-count and BFT figures.

pub mod cluster;
pub mod driver;
pub mod sched;

pub use cluster::{ClusterMetrics, ClusterModel};
pub use driver::{
    run_experiment, run_sharded_experiment, EngineKind, RunConfig, RunMetrics, ShardRunConfig,
};
pub use sched::{makespan, pipeline_total_ns, schedule_block, BlockSchedule};
