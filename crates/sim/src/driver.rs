//! Experiment driver: run (engine × workload) for N blocks with
//! abort-retry and produce the paper's metrics.

use std::collections::VecDeque;
use std::sync::Arc;

use harmony_common::{BlockId, DetRng, Result};
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::{BlockStats, HarmonyConfig, SnapshotStore};
use harmony_dcc_baselines::{
    Aria, AriaConfig, DccEngine, Fabric, FabricConfig, FastFabric, FastFabricConfig, HarmonyEngine,
    Rbc,
};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::Contract;
use harmony_workloads::Workload;

use crate::sched::{pipeline_total_ns, schedule_block};

/// Which engine to instantiate (the paper's five systems).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// HarmonyBC with the given toggles.
    Harmony(HarmonyConfig),
    /// AriaBC.
    Aria,
    /// RBC.
    Rbc,
    /// Fabric.
    Fabric,
    /// FastFabric#.
    FastFabric,
}

impl EngineKind {
    /// Display name matching the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Harmony(_) => "HarmonyBC",
            EngineKind::Aria => "AriaBC",
            EngineKind::Rbc => "RBC",
            EngineKind::Fabric => "Fabric",
            EngineKind::FastFabric => "FastFabric#",
        }
    }

    /// Instantiate over a snapshot store.
    #[must_use]
    pub fn build(&self, store: Arc<SnapshotStore>, workers: usize) -> Arc<dyn DccEngine> {
        match self {
            EngineKind::Harmony(config) => {
                let config = HarmonyConfig { workers, ..*config };
                Arc::new(HarmonyEngine::new(store, config))
            }
            EngineKind::Aria => Arc::new(Aria::new(
                store,
                AriaConfig {
                    workers,
                    reordering: true,
                },
            )),
            EngineKind::Rbc => Arc::new(Rbc::new(store, workers)),
            EngineKind::Fabric => Arc::new(Fabric::new(
                store,
                FabricConfig {
                    workers,
                    ..FabricConfig::default()
                },
            )),
            EngineKind::FastFabric => Arc::new(FastFabric::new(
                store,
                FastFabricConfig {
                    fabric: FabricConfig {
                        workers,
                        ..FabricConfig::default()
                    },
                    ..FastFabricConfig::default()
                },
            )),
        }
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of blocks to execute.
    pub blocks: usize,
    /// Transactions per block (also the concurrency degree, §5.2).
    pub block_size: usize,
    /// Worker cores per replica.
    pub workers: usize,
    /// Storage configuration (disk profile = the Figure 21 axis).
    pub storage: StorageConfig,
    /// Workload seed.
    pub seed: u64,
    /// Requeue protocol-aborted transactions into the next block.
    pub retry_aborts: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            blocks: 40,
            block_size: 25,
            workers: 8,
            storage: StorageConfig::default(),
            seed: 0x5EED,
            retry_aborts: true,
        }
    }
}

/// Metrics of one run — the quantities the paper's figures plot.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// System name.
    pub system: &'static str,
    /// Committed transactions per second of virtual time.
    pub throughput_tps: f64,
    /// Mean end-to-end latency of committed transactions (ms): time from
    /// the transaction's first block to its committing block's completion.
    pub latency_ms: f64,
    /// Protocol abort rate (aborts / attempts, excluding user aborts).
    pub abort_rate: f64,
    /// CPU utilization: total work / (workers × wall time).
    pub cpu_utilization: f64,
    /// Aggregated protocol counters.
    pub stats: BlockStats,
    /// Disk reads issued during the run.
    pub disk_reads: u64,
    /// Disk writes issued during the run.
    pub disk_writes: u64,
    /// Buffer pool hit rate.
    pub buffer_hit_rate: f64,
    /// Virtual wall time of the run (ns).
    pub wall_ns: u64,
}

/// Run one experiment: load the workload, execute `blocks` blocks of
/// `block_size` transactions, requeue aborts, and aggregate metrics.
pub fn run_experiment(
    kind: EngineKind,
    workload: &mut dyn Workload,
    config: &RunConfig,
) -> Result<RunMetrics> {
    let engine = Arc::new(StorageEngine::open(&config.storage)?);
    workload.setup(&engine)?;
    let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
    let dcc = kind.build(Arc::clone(&store), config.workers);
    let io_before = engine.io_snapshot();

    let mut rng = DetRng::new(config.seed);
    let mut totals = BlockStats::default();
    let mut schedules = Vec::with_capacity(config.blocks);
    // Retry queue: (contract, block index it first entered).
    let mut retry: VecDeque<(Arc<dyn Contract>, usize)> = VecDeque::new();
    // Latency bookkeeping: blocks-in-flight per committed txn.
    let mut committed_block_spans: Vec<(usize, usize)> = Vec::new();
    let mut fresh_txns = 0usize;

    for b in 0..config.blocks {
        let mut txns: Vec<Arc<dyn Contract>> = Vec::with_capacity(config.block_size);
        let mut born: Vec<usize> = Vec::with_capacity(config.block_size);
        while txns.len() < config.block_size {
            if let Some((t, b0)) = retry.pop_front() {
                txns.push(t);
                born.push(b0);
            } else {
                txns.push(workload.next_txn(&mut rng));
                born.push(b);
                fresh_txns += 1;
            }
        }
        let block = ExecBlock::new(BlockId(b as u64 + 1), txns);
        let result = dcc.execute_block(&block)?;
        for (i, outcome) in result.outcomes.iter().enumerate() {
            match outcome {
                TxnOutcome::Committed => committed_block_spans.push((born[i], b)),
                TxnOutcome::Aborted(reason)
                    if config.retry_aborts
                        && *reason != harmony_common::error::AbortReason::UserAbort =>
                {
                    retry.push_back((Arc::clone(&block.txns[i]), born[i]));
                }
                TxnOutcome::Aborted(_) => {}
            }
        }
        totals.absorb(&result.stats);
        let mut sched = schedule_block(&result, config.workers, dcc.commit_is_serial());
        // Group commit: one log write + sync per block (logical block log
        // for OE, physical write-set log for SOV).
        sched.commit_ns += config.storage.log_sync_ns;
        sched.commit_work_ns += config.storage.log_sync_ns;
        sched.work_ns += config.storage.log_sync_ns;
        schedules.push(sched);
    }
    let _ = fresh_txns;

    let wall_ns = pipeline_total_ns(&schedules, dcc.pipeline_depth(), config.workers).max(1);
    let io = engine.io_snapshot().delta_since(&io_before);
    let mean_block_ns = wall_ns as f64 / config.blocks as f64;
    let latency_ms = if committed_block_spans.is_empty() {
        0.0
    } else {
        let mean_span: f64 = committed_block_spans
            .iter()
            .map(|(b0, b1)| (b1 - b0 + 1) as f64)
            .sum::<f64>()
            / committed_block_spans.len() as f64;
        mean_span * mean_block_ns / 1e6
    };
    let work_ns: u64 = schedules.iter().map(|s| s.work_ns).sum();
    Ok(RunMetrics {
        system: kind.name(),
        throughput_tps: totals.committed as f64 / (wall_ns as f64 / 1e9),
        latency_ms,
        abort_rate: totals.abort_rate(),
        cpu_utilization: work_ns as f64 / (config.workers as f64 * wall_ns as f64),
        stats: totals,
        disk_reads: io.disk_reads,
        disk_writes: io.disk_writes,
        buffer_hit_rate: {
            let total = io.pool.hits + io.pool.misses;
            if total == 0 {
                0.0
            } else {
                io.pool.hits as f64 / total as f64
            }
        },
        wall_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_workloads::{Smallbank, SmallbankConfig, Ycsb, YcsbConfig};

    fn quick_config() -> RunConfig {
        RunConfig {
            blocks: 12,
            block_size: 20,
            workers: 4,
            storage: StorageConfig::default(),
            seed: 1,
            retry_aborts: true,
        }
    }

    fn small_ycsb(theta: f64) -> Ycsb {
        Ycsb::new(YcsbConfig {
            keys: 1_000,
            theta,
            ..YcsbConfig::default()
        })
    }

    #[test]
    fn harmony_run_produces_metrics() {
        let mut w = small_ycsb(0.6);
        let m = run_experiment(
            EngineKind::Harmony(HarmonyConfig::default()),
            &mut w,
            &quick_config(),
        )
        .unwrap();
        assert!(m.throughput_tps > 0.0, "{m:?}");
        assert!(m.latency_ms > 0.0);
        assert!(m.stats.committed > 0);
        assert!(m.buffer_hit_rate > 0.0);
        assert!(m.cpu_utilization > 0.0 && m.cpu_utilization <= 1.0);
    }

    #[test]
    fn all_engines_run_ycsb() {
        for kind in [
            EngineKind::Harmony(HarmonyConfig::default()),
            EngineKind::Aria,
            EngineKind::Rbc,
            EngineKind::Fabric,
            EngineKind::FastFabric,
        ] {
            let mut w = small_ycsb(0.6);
            let m = run_experiment(kind, &mut w, &quick_config()).unwrap();
            assert!(
                m.stats.committed > 0,
                "{} committed nothing: {:?}",
                kind.name(),
                m.stats
            );
        }
    }

    #[test]
    fn harmony_beats_aria_on_hotspots() {
        // The Figure 14 claim: with 1% hot records and merged
        // read-modify-write UPDATE statements, Harmony commits everything
        // (ww-dependencies are reordered and coalesced, no rw edges arise)
        // while Aria aborts every waw-conflicting updater.
        let config = quick_config();
        let mut w1 = Ycsb::new(YcsbConfig {
            keys: 1_000,
            ..YcsbConfig::hotspot(0.8)
        });
        let harmony = run_experiment(
            EngineKind::Harmony(HarmonyConfig::default()),
            &mut w1,
            &config,
        )
        .unwrap();
        let mut w2 = Ycsb::new(YcsbConfig {
            keys: 1_000,
            ..YcsbConfig::hotspot(0.8)
        });
        let aria = run_experiment(EngineKind::Aria, &mut w2, &config).unwrap();
        assert!(
            harmony.abort_rate < 0.05,
            "Harmony must be hotspot-resilient: {:?}",
            harmony.abort_rate
        );
        assert!(
            aria.abort_rate > 2.0 * harmony.abort_rate + 0.1,
            "harmony={:?} aria={:?}",
            harmony.abort_rate,
            aria.abort_rate
        );
        assert!(
            harmony.throughput_tps > aria.throughput_tps,
            "harmony={} aria={}",
            harmony.throughput_tps,
            aria.throughput_tps
        );
    }

    #[test]
    fn retry_requeues_aborted_txns() {
        let mut w = Smallbank::new(SmallbankConfig {
            accounts: 100,
            theta: 0.95,
        });
        let m = run_experiment(EngineKind::Aria, &mut w, &quick_config()).unwrap();
        // With retries, attempts exceed blocks × size.
        assert!(m.stats.txns >= 12 * 20);
    }

    #[test]
    fn deterministic_metrics() {
        let run = || {
            let mut w = small_ycsb(0.8);
            run_experiment(
                EngineKind::Harmony(HarmonyConfig::default()),
                &mut w,
                &quick_config(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.wall_ns, b.wall_ns);
    }
}
