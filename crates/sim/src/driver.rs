//! Experiment driver: run (engine × workload) for N blocks with
//! abort-retry and produce the paper's metrics.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::str::FromStr;
use std::sync::Arc;

use harmony_common::{BlockId, DetRng, Result};
use harmony_consensus::net::LatencyModel;
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::{BlockStats, HarmonyConfig, SnapshotStore};
use harmony_dcc_baselines::{
    Aria, AriaConfig, DccEngine, Fabric, FabricConfig, FastFabric, FastFabricConfig, HarmonyEngine,
    Rbc,
};
use harmony_shard::{HashPartitioner, ShardEngine, ShardGroup, ShardGroupConfig, ShardRouter};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::Contract;
use harmony_workloads::Workload;

use crate::sched::{makespan, pipeline_total_ns, schedule_block};

/// Which engine to instantiate (the paper's five systems).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// HarmonyBC with the given toggles.
    Harmony(HarmonyConfig),
    /// AriaBC.
    Aria,
    /// RBC.
    Rbc,
    /// Fabric.
    Fabric,
    /// FastFabric#.
    FastFabric,
}

impl EngineKind {
    /// Display name matching the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Harmony(_) => "HarmonyBC",
            EngineKind::Aria => "AriaBC",
            EngineKind::Rbc => "RBC",
            EngineKind::Fabric => "Fabric",
            EngineKind::FastFabric => "FastFabric#",
        }
    }

    /// The engine in its sharded profile (see `harmony_shard::engines`),
    /// preserving Harmony's ablation toggles apart from the inter-block
    /// parallelism the profile forbids.
    #[must_use]
    pub fn build_sharded(&self, store: Arc<SnapshotStore>, workers: usize) -> Arc<dyn DccEngine> {
        match self {
            EngineKind::Harmony(config) => Arc::new(HarmonyEngine::new(
                store,
                HarmonyConfig {
                    workers,
                    inter_block_parallelism: false,
                    ..*config
                },
            )),
            EngineKind::Aria => ShardEngine::Aria.build(store, workers),
            EngineKind::Rbc => ShardEngine::Rbc.build(store, workers),
            EngineKind::Fabric => ShardEngine::Fabric.build(store, workers),
            EngineKind::FastFabric => ShardEngine::FastFabric.build(store, workers),
        }
    }

    /// The sharded profile positioned at an arbitrary next block — what a
    /// sharded replica's per-shard chain factory uses on open, crash
    /// recovery, and snapshot install. Harmony keeps its ablation toggles
    /// (minus the inter-block parallelism the profile forbids, which also
    /// makes a previous-block summary moot); the other engines delegate to
    /// [`ShardEngine::build_at`].
    #[must_use]
    pub fn build_sharded_at(
        &self,
        store: Arc<SnapshotStore>,
        workers: usize,
        next_block: BlockId,
    ) -> Arc<dyn DccEngine> {
        match self {
            EngineKind::Harmony(config) => Arc::new(HarmonyEngine::starting_at(
                store,
                HarmonyConfig {
                    workers,
                    inter_block_parallelism: false,
                    ..*config
                },
                next_block,
                None,
            )),
            EngineKind::Aria => ShardEngine::Aria.build_at(store, workers, next_block),
            EngineKind::Rbc => ShardEngine::Rbc.build_at(store, workers, next_block),
            EngineKind::Fabric => ShardEngine::Fabric.build_at(store, workers, next_block),
            EngineKind::FastFabric => ShardEngine::FastFabric.build_at(store, workers, next_block),
        }
    }

    /// Instantiate over a snapshot store.
    #[must_use]
    pub fn build(&self, store: Arc<SnapshotStore>, workers: usize) -> Arc<dyn DccEngine> {
        self.build_at(store, workers, BlockId(1), None)
    }

    /// Instantiate positioned at an arbitrary next block — the recovery /
    /// state-sync entry point. `prev_summary` seeds Harmony's Rule-3
    /// inter-block validation (ignored by the other engines, whose rules
    /// are per-block).
    #[must_use]
    pub fn build_at(
        &self,
        store: Arc<SnapshotStore>,
        workers: usize,
        next_block: BlockId,
        prev_summary: Option<harmony_core::executor::BlockSummary>,
    ) -> Arc<dyn DccEngine> {
        match self {
            EngineKind::Harmony(config) => {
                let config = HarmonyConfig { workers, ..*config };
                Arc::new(HarmonyEngine::starting_at(
                    store,
                    config,
                    next_block,
                    prev_summary,
                ))
            }
            EngineKind::Aria => Arc::new(Aria::starting_at(
                store,
                AriaConfig {
                    workers,
                    reordering: true,
                },
                next_block,
            )),
            EngineKind::Rbc => Arc::new(Rbc::starting_at(store, workers, next_block)),
            EngineKind::Fabric => Arc::new(Fabric::starting_at(
                store,
                FabricConfig {
                    workers,
                    ..FabricConfig::default()
                },
                next_block,
            )),
            EngineKind::FastFabric => Arc::new(FastFabric::starting_at(
                store,
                FastFabricConfig {
                    fabric: FabricConfig {
                        workers,
                        ..FabricConfig::default()
                    },
                    ..FastFabricConfig::default()
                },
                next_block,
            )),
        }
    }
}

impl FromStr for EngineKind {
    type Err = harmony_common::Error;

    /// Case-insensitive parse of the paper names (plus common short
    /// forms): `HarmonyBC`/`harmony`, `AriaBC`/`aria`, `RBC`,
    /// `Fabric`, `FastFabric#`/`fastfabric`. Delegates to
    /// [`ShardEngine`]'s parser so the two selectors can never drift.
    fn from_str(s: &str) -> Result<EngineKind, Self::Err> {
        Ok(match s.parse::<ShardEngine>()? {
            ShardEngine::Harmony => EngineKind::Harmony(HarmonyConfig::default()),
            ShardEngine::Aria => EngineKind::Aria,
            ShardEngine::Rbc => EngineKind::Rbc,
            ShardEngine::Fabric => EngineKind::Fabric,
            ShardEngine::FastFabric => EngineKind::FastFabric,
        })
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of blocks to execute.
    pub blocks: usize,
    /// Transactions per block (also the concurrency degree, §5.2).
    pub block_size: usize,
    /// Worker cores per replica.
    pub workers: usize,
    /// Storage configuration (disk profile = the Figure 21 axis).
    pub storage: StorageConfig,
    /// Workload seed.
    pub seed: u64,
    /// Requeue protocol-aborted transactions into the next block.
    pub retry_aborts: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            blocks: 40,
            block_size: 25,
            workers: 8,
            storage: StorageConfig::default(),
            seed: 0x5EED,
            retry_aborts: true,
        }
    }
}

/// Metrics of one run — the quantities the paper's figures plot.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// System name. Borrowed for the plain engines; owned for composed
    /// configurations that label their own series (e.g.
    /// `"HarmonyBC×8shards"`).
    pub system: Cow<'static, str>,
    /// Committed transactions per second of virtual time.
    pub throughput_tps: f64,
    /// Mean end-to-end latency of committed transactions (ms): time from
    /// the transaction's first block to its committing block's completion.
    pub latency_ms: f64,
    /// Protocol abort rate (aborts / attempts, excluding user aborts).
    pub abort_rate: f64,
    /// CPU utilization: total work / (workers × wall time).
    pub cpu_utilization: f64,
    /// Aggregated protocol counters.
    pub stats: BlockStats,
    /// Disk reads issued during the run.
    pub disk_reads: u64,
    /// Disk writes issued during the run.
    pub disk_writes: u64,
    /// Buffer pool hit rate.
    pub buffer_hit_rate: f64,
    /// Virtual wall time of the run (ns).
    pub wall_ns: u64,
}

/// Retry queue entry: (contract, block index it first entered).
type RetryQueue = VecDeque<(Arc<dyn Contract>, usize)>;

/// Fill the next block: drain the retry queue first, then top up with
/// fresh transactions from the workload. Returns the transactions and the
/// block index each first entered (latency bookkeeping).
fn fill_block(
    retry: &mut RetryQueue,
    workload: &mut dyn Workload,
    rng: &mut DetRng,
    block_size: usize,
    block: usize,
) -> (Vec<Arc<dyn Contract>>, Vec<usize>) {
    let mut txns: Vec<Arc<dyn Contract>> = Vec::with_capacity(block_size);
    let mut born: Vec<usize> = Vec::with_capacity(block_size);
    while txns.len() < block_size {
        if let Some((t, b0)) = retry.pop_front() {
            txns.push(t);
            born.push(b0);
        } else {
            txns.push(workload.next_txn(rng));
            born.push(block);
        }
    }
    (txns, born)
}

/// Record commit spans and requeue retryable (non-user) aborts.
fn track_outcomes(
    outcomes: &[TxnOutcome],
    txns: &[Arc<dyn Contract>],
    born: &[usize],
    block: usize,
    retry_aborts: bool,
    retry: &mut RetryQueue,
    committed_block_spans: &mut Vec<(usize, usize)>,
) {
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            TxnOutcome::Committed => committed_block_spans.push((born[i], block)),
            TxnOutcome::Aborted(reason)
                if retry_aborts && *reason != harmony_common::error::AbortReason::UserAbort =>
            {
                retry.push_back((Arc::clone(&txns[i]), born[i]));
            }
            TxnOutcome::Aborted(_) => {}
        }
    }
}

/// Mean end-to-end latency (ms) from the blocks-in-flight spans of
/// committed transactions and the mean per-block wall time.
fn mean_latency_ms(committed_block_spans: &[(usize, usize)], mean_block_ns: f64) -> f64 {
    if committed_block_spans.is_empty() {
        return 0.0;
    }
    let mean_span: f64 = committed_block_spans
        .iter()
        .map(|(b0, b1)| (b1 - b0 + 1) as f64)
        .sum::<f64>()
        / committed_block_spans.len() as f64;
    mean_span * mean_block_ns / 1e6
}

/// Buffer pool hit rate of an I/O delta (0 when no lookups happened).
fn hit_rate(io: &harmony_storage::IoSnapshot) -> f64 {
    let total = io.pool.hits + io.pool.misses;
    if total == 0 {
        0.0
    } else {
        io.pool.hits as f64 / total as f64
    }
}

/// Run one experiment: load the workload, execute `blocks` blocks of
/// `block_size` transactions, requeue aborts, and aggregate metrics.
pub fn run_experiment(
    kind: EngineKind,
    workload: &mut dyn Workload,
    config: &RunConfig,
) -> Result<RunMetrics> {
    let engine = Arc::new(StorageEngine::open(&config.storage)?);
    workload.setup(&engine)?;
    let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
    let dcc = kind.build(Arc::clone(&store), config.workers);
    let io_before = engine.io_snapshot();

    let mut rng = DetRng::new(config.seed);
    let mut totals = BlockStats::default();
    let mut schedules = Vec::with_capacity(config.blocks);
    let mut retry: RetryQueue = VecDeque::new();
    // Latency bookkeeping: blocks-in-flight per committed txn.
    let mut committed_block_spans: Vec<(usize, usize)> = Vec::new();

    for b in 0..config.blocks {
        let (txns, born) = fill_block(&mut retry, workload, &mut rng, config.block_size, b);
        let block = ExecBlock::new(BlockId(b as u64 + 1), txns);
        let result = dcc.execute_block(&block)?;
        track_outcomes(
            &result.outcomes,
            &block.txns,
            &born,
            b,
            config.retry_aborts,
            &mut retry,
            &mut committed_block_spans,
        );
        totals.absorb(&result.stats);
        let mut sched = schedule_block(&result, config.workers, dcc.commit_is_serial());
        // Group commit: one log write + sync per block (logical block log
        // for OE, physical write-set log for SOV).
        sched.commit_ns += config.storage.log_sync_ns;
        sched.commit_work_ns += config.storage.log_sync_ns;
        sched.work_ns += config.storage.log_sync_ns;
        schedules.push(sched);
    }

    let wall_ns = pipeline_total_ns(&schedules, dcc.pipeline_depth(), config.workers).max(1);
    let io = engine.io_snapshot().delta_since(&io_before);
    let mean_block_ns = wall_ns as f64 / config.blocks as f64;
    let latency_ms = mean_latency_ms(&committed_block_spans, mean_block_ns);
    let work_ns: u64 = schedules.iter().map(|s| s.work_ns).sum();
    Ok(RunMetrics {
        system: Cow::Borrowed(kind.name()),
        throughput_tps: totals.committed as f64 / (wall_ns as f64 / 1e9),
        latency_ms,
        abort_rate: totals.abort_rate(),
        cpu_utilization: work_ns as f64 / (config.workers as f64 * wall_ns as f64),
        stats: totals,
        disk_reads: io.disk_reads,
        disk_writes: io.disk_writes,
        buffer_hit_rate: hit_rate(&io),
        wall_ns,
    })
}

// ── Sharded run path ─────────────────────────────────────────────────────

/// Parameters of a sharded experiment (the Figure 22 axes).
#[derive(Clone, Debug)]
pub struct ShardRunConfig {
    /// Per-shard parameters: `block_size` is the *global* block size
    /// (split across shards by the router); `workers` are per shard —
    /// shards add hardware, like replicas do.
    pub base: RunConfig,
    /// Physical shard count.
    pub shards: usize,
    /// Logical partition count (fixed across shard counts so transaction
    /// classification never changes; must be ≥ the largest shard count
    /// under comparison).
    pub partitions: u32,
    /// Network model for the cross-shard read-fragment exchange.
    pub latency: LatencyModel,
}

impl Default for ShardRunConfig {
    fn default() -> Self {
        ShardRunConfig {
            base: RunConfig::default(),
            shards: 4,
            partitions: 64,
            latency: LatencyModel::lan_1g(),
        }
    }
}

/// Run one sharded experiment: the workload's global transaction stream is
/// routed across `shards` engine instances; single-shard sub-blocks run in
/// parallel across shards, multi-partition transactions pay the modeled
/// fragment-exchange round plus a re-simulation stage.
pub fn run_sharded_experiment(
    kind: EngineKind,
    workload: &mut dyn Workload,
    config: &ShardRunConfig,
) -> Result<RunMetrics> {
    let router = ShardRouter::new(
        Arc::new(HashPartitioner::new(config.partitions)),
        config.shards,
    );
    let group_config = ShardGroupConfig {
        storage: config.base.storage.clone(),
        latency: config.latency.clone(),
        cross_workers: config.base.workers,
    };
    let mut group = ShardGroup::new(router, &group_config, |store| {
        kind.build_sharded(store, config.base.workers)
    })?;
    group.setup_with(|engine| workload.setup(engine))?;
    let commit_serial = (0..group.shards()).any(|s| group.dcc(s).commit_is_serial());
    let io_before: Vec<_> = (0..group.shards())
        .map(|s| group.engine(s).io_snapshot())
        .collect();

    let mut rng = DetRng::new(config.base.seed);
    let mut totals = BlockStats::default();
    let mut retry: RetryQueue = VecDeque::new();
    let mut committed_block_spans: Vec<(usize, usize)> = Vec::new();
    let mut wall_ns = 0u64;
    let mut work_ns = 0u64;
    for b in 0..config.base.blocks {
        let (txns, born) = fill_block(&mut retry, workload, &mut rng, config.base.block_size, b);
        let result = group.execute_block(txns.clone())?;
        track_outcomes(
            &result.outcomes,
            &txns,
            &born,
            b,
            config.base.retry_aborts,
            &mut retry,
            &mut committed_block_spans,
        );
        totals.absorb(&result.stats);

        // Cross stage (all shards in lockstep): fragment exchange + the
        // deterministic re-simulation of multi-partition transactions.
        let cross_ns = result.exchange_ns + makespan(&result.cross_sim_ns, config.base.workers);
        // Shard stage: every shard executes its sub-block concurrently;
        // each pays its own group-commit log sync.
        let shard_stage = result
            .shard_results
            .iter()
            .map(|r| {
                schedule_block(r, config.base.workers, commit_serial).total_ns()
                    + config.base.storage.log_sync_ns
            })
            .max()
            .unwrap_or(0);
        wall_ns += cross_ns + shard_stage;
        work_ns += result.stats.sim_ns_total
            + result.stats.commit_ns_total
            + config.base.storage.log_sync_ns * group.shards() as u64;
    }
    let wall_ns = wall_ns.max(1);

    let mut io = harmony_storage::IoSnapshot::default();
    for (s, before) in io_before.iter().enumerate() {
        io.absorb(&group.engine(s).io_snapshot().delta_since(before));
    }
    let mean_block_ns = wall_ns as f64 / config.base.blocks as f64;
    let latency_ms = mean_latency_ms(&committed_block_spans, mean_block_ns);
    Ok(RunMetrics {
        system: Cow::Owned(format!("{}×{}shards", kind.name(), config.shards)),
        throughput_tps: totals.committed as f64 / (wall_ns as f64 / 1e9),
        latency_ms,
        abort_rate: totals.abort_rate(),
        cpu_utilization: work_ns as f64
            / (config.shards as f64 * config.base.workers as f64 * wall_ns as f64),
        stats: totals,
        disk_reads: io.disk_reads,
        disk_writes: io.disk_writes,
        buffer_hit_rate: hit_rate(&io),
        wall_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_workloads::{Smallbank, SmallbankConfig, Ycsb, YcsbConfig};

    fn quick_config() -> RunConfig {
        RunConfig {
            blocks: 12,
            block_size: 20,
            workers: 4,
            storage: StorageConfig::default(),
            seed: 1,
            retry_aborts: true,
        }
    }

    fn small_ycsb(theta: f64) -> Ycsb {
        Ycsb::new(YcsbConfig {
            keys: 1_000,
            theta,
            ..YcsbConfig::default()
        })
    }

    #[test]
    fn harmony_run_produces_metrics() {
        let mut w = small_ycsb(0.6);
        let m = run_experiment(
            EngineKind::Harmony(HarmonyConfig::default()),
            &mut w,
            &quick_config(),
        )
        .unwrap();
        assert!(m.throughput_tps > 0.0, "{m:?}");
        assert!(m.latency_ms > 0.0);
        assert!(m.stats.committed > 0);
        assert!(m.buffer_hit_rate > 0.0);
        assert!(m.cpu_utilization > 0.0 && m.cpu_utilization <= 1.0);
    }

    #[test]
    fn all_engines_run_ycsb() {
        for kind in [
            EngineKind::Harmony(HarmonyConfig::default()),
            EngineKind::Aria,
            EngineKind::Rbc,
            EngineKind::Fabric,
            EngineKind::FastFabric,
        ] {
            let mut w = small_ycsb(0.6);
            let m = run_experiment(kind, &mut w, &quick_config()).unwrap();
            assert!(
                m.stats.committed > 0,
                "{} committed nothing: {:?}",
                kind.name(),
                m.stats
            );
        }
    }

    #[test]
    fn harmony_beats_aria_on_hotspots() {
        // The Figure 14 claim: with 1% hot records and merged
        // read-modify-write UPDATE statements, Harmony commits everything
        // (ww-dependencies are reordered and coalesced, no rw edges arise)
        // while Aria aborts every waw-conflicting updater.
        let config = quick_config();
        let mut w1 = Ycsb::new(YcsbConfig {
            keys: 1_000,
            ..YcsbConfig::hotspot(0.8)
        });
        let harmony = run_experiment(
            EngineKind::Harmony(HarmonyConfig::default()),
            &mut w1,
            &config,
        )
        .unwrap();
        let mut w2 = Ycsb::new(YcsbConfig {
            keys: 1_000,
            ..YcsbConfig::hotspot(0.8)
        });
        let aria = run_experiment(EngineKind::Aria, &mut w2, &config).unwrap();
        assert!(
            harmony.abort_rate < 0.05,
            "Harmony must be hotspot-resilient: {:?}",
            harmony.abort_rate
        );
        assert!(
            aria.abort_rate > 2.0 * harmony.abort_rate + 0.1,
            "harmony={:?} aria={:?}",
            harmony.abort_rate,
            aria.abort_rate
        );
        assert!(
            harmony.throughput_tps > aria.throughput_tps,
            "harmony={} aria={}",
            harmony.throughput_tps,
            aria.throughput_tps
        );
    }

    #[test]
    fn retry_requeues_aborted_txns() {
        let mut w = Smallbank::new(SmallbankConfig {
            accounts: 100,
            theta: 0.95,
            ..SmallbankConfig::default()
        });
        let m = run_experiment(EngineKind::Aria, &mut w, &quick_config()).unwrap();
        // With retries, attempts exceed blocks × size.
        assert!(m.stats.txns >= 12 * 20);
    }

    #[test]
    fn engine_kind_name_parse_round_trip() {
        for kind in [
            EngineKind::Harmony(HarmonyConfig::default()),
            EngineKind::Aria,
            EngineKind::Rbc,
            EngineKind::Fabric,
            EngineKind::FastFabric,
        ] {
            let parsed: EngineKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind, "round trip through {}", kind.name());
        }
        assert_eq!(
            "fastfabric".parse::<EngineKind>().unwrap(),
            EngineKind::FastFabric
        );
        // Case-insensitive, whitespace-tolerant (HARMONY_ENGINES DX).
        assert_eq!(
            " HARMONYBC ".parse::<EngineKind>().unwrap(),
            EngineKind::Harmony(HarmonyConfig::default())
        );
        assert_eq!("Aria".parse::<EngineKind>().unwrap(), EngineKind::Aria);
        let err = "mysql".parse::<EngineKind>().unwrap_err().to_string();
        for name in ["HarmonyBC", "AriaBC", "RBC", "Fabric", "FastFabric#"] {
            assert!(err.contains(name), "error must enumerate {name}: {err}");
        }
    }

    fn sharded_config(shards: usize, blocks: usize, block_size: usize) -> ShardRunConfig {
        ShardRunConfig {
            base: RunConfig {
                blocks,
                block_size,
                workers: 4,
                ..RunConfig::default()
            },
            shards,
            partitions: 16,
            ..ShardRunConfig::default()
        }
    }

    fn partitioned_smallbank(ratio: f64) -> Smallbank {
        Smallbank::new(SmallbankConfig {
            accounts: 2_000,
            theta: 0.4,
            partitions: 16,
            multi_partition_ratio: ratio,
        })
    }

    #[test]
    fn sharded_run_produces_labelled_metrics() {
        let mut w = partitioned_smallbank(0.1);
        let m = run_sharded_experiment(
            EngineKind::Harmony(HarmonyConfig::default()),
            &mut w,
            &sharded_config(8, 8, 40),
        )
        .unwrap();
        assert_eq!(m.system, "HarmonyBC×8shards");
        assert!(m.throughput_tps > 0.0, "{m:?}");
        assert!(m.stats.committed > 0);
        assert!(m.cpu_utilization > 0.0 && m.cpu_utilization <= 1.0, "{m:?}");
    }

    #[test]
    fn sharding_scales_partitionable_load() {
        // A fully single-partition workload must gain throughput from
        // sharding (the Figure 22 headline shape).
        let run = |shards| {
            let mut w = partitioned_smallbank(0.0);
            run_sharded_experiment(
                EngineKind::Harmony(HarmonyConfig::default()),
                &mut w,
                &sharded_config(shards, 10, 64),
            )
            .unwrap()
            .throughput_tps
        };
        let one = run(1);
        let eight = run(8);
        assert!(
            eight > 2.5 * one,
            "8 shards must outscale 1: one={one} eight={eight}"
        );
    }

    #[test]
    fn cross_shard_ratio_degrades_gracefully() {
        let run = |ratio| {
            let mut w = partitioned_smallbank(ratio);
            run_sharded_experiment(
                EngineKind::Harmony(HarmonyConfig::default()),
                &mut w,
                &sharded_config(4, 8, 40),
            )
            .unwrap()
            .throughput_tps
        };
        let clean = run(0.0);
        let dirty = run(0.2);
        assert!(
            dirty < clean,
            "cross-shard traffic must cost something: clean={clean} dirty={dirty}"
        );
        assert!(
            dirty > clean * 0.2,
            "20% cross-shard must degrade gracefully, not collapse: \
             clean={clean} dirty={dirty}"
        );
    }

    #[test]
    fn deterministic_metrics() {
        let run = || {
            let mut w = small_ycsb(0.8);
            run_experiment(
                EngineKind::Harmony(HarmonyConfig::default()),
                &mut w,
                &quick_config(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.wall_ns, b.wall_ns);
    }
}
