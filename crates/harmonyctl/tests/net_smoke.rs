//! net_smoke: a real multi-process loopback cluster must commit the
//! exact state root the deterministic simulator computes for the same
//! workload and seed — flat and sharded, Kafka and HotStuff — while the
//! operator CLI drives submission, inspection, fault injection, and
//! live metrics scrapes.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use harmony_transport::{http_get, CtlClient};
use harmonyctl::{sim_reference, ClusterSpec, NetOptions};

const BIN: &str = env!("CARGO_BIN_EXE_harmonyctl");

/// Best-effort process cleanup if an assertion fails mid-run.
struct StopGuard(PathBuf);

impl Drop for StopGuard {
    fn drop(&mut self) {
        let _ = Command::new(BIN)
            .args(["stop", "--dir"])
            .arg(&self.0)
            .output();
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ctl(args: &[&str], dir: &Path) -> String {
    let output = Command::new(BIN)
        .args([args[0], "--dir"])
        .arg(dir)
        .args(&args[1..])
        .output()
        .expect("run harmonyctl");
    assert!(
        output.status.success(),
        "harmonyctl {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf8 output")
}

fn opts_flags(opts: &NetOptions) -> Vec<String> {
    let mut flags = vec![
        "--workload".into(),
        opts.workload.name().into(),
        "--replicas".into(),
        opts.replicas.to_string(),
        "--shards".into(),
        opts.shards.to_string(),
        "--brokers".into(),
        opts.brokers.to_string(),
        "--block-txns".into(),
        opts.block_txns.to_string(),
        "--txns".into(),
        opts.txns.to_string(),
        "--seed".into(),
        opts.seed.to_string(),
    ];
    if opts.hotstuff {
        flags.push("--hotstuff".into());
    }
    flags
}

/// Poll every replica until it is `up` at `height` and all roots agree;
/// return `(root, logical_root)`.
fn await_convergence(spec: &ClusterSpec, height: u64, deadline: Duration) -> (String, String) {
    let layout = spec.layout().expect("layout");
    let replica_base = layout.replica_base();
    let started = Instant::now();
    loop {
        let mut roots = Vec::new();
        for index in replica_base..layout.total() {
            let status = CtlClient::connect(spec.node_addr(index).expect("addr"))
                .and_then(|mut c| c.status());
            match status {
                Ok(s) if s.state == "up" && s.height == height && !s.root.is_empty() => {
                    roots.push((s.root, s.logical_root));
                }
                _ => break,
            }
        }
        if roots.len() == layout.replicas && roots.iter().all(|r| *r == roots[0]) {
            return roots.remove(0);
        }
        assert!(
            started.elapsed() < deadline,
            "cluster did not converge to height {height} within {deadline:?}: {roots:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn smoke(name: &str, opts: NetOptions, exercise_faults: bool) {
    let dir = std::env::temp_dir().join(format!("hbc-net-smoke-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let guard = StopGuard(dir.clone());

    let spawn_flags: Vec<&str> = opts_flags(&opts)
        .leak()
        .iter()
        .map(String::as_str)
        .collect();
    let mut spawn_args = vec!["spawn"];
    spawn_args.extend(spawn_flags);
    ctl(&spawn_args, &dir);
    let spec = ClusterSpec::load(&dir).expect("load spec");
    assert_eq!(spec.opts, opts, "spawn must persist the exact options");

    // Drive the deterministic trace through the real orderer socket.
    ctl(&["submit"], &dir);
    let height = opts.expected_height();
    let (root, logical) = await_convergence(&spec, height, Duration::from_secs(60));

    // The acceptance bar: real sockets == deterministic simulator.
    let reference = sim_reference(&opts).expect("sim reference");
    assert_eq!(reference.height, height, "{name}: sim height");
    assert_eq!(
        reference.root, root,
        "{name}: state root over TCP != simulator"
    );
    assert_eq!(
        reference.logical_root, logical,
        "{name}: logical root over TCP != simulator"
    );

    // Block inspection: the committed chain is visible via the CLI.
    let layout = spec.layout().expect("layout");
    let block_out = ctl(&["block", "--node", "2", "--seq", "1"], &dir);
    // Node 2 is a replica only when there are no followers. On sharded
    // replicas the summary covers shard 0's sub-block, so only its hash
    // presence is portable across topologies.
    if layout.replica_base() == 2 {
        assert!(block_out.contains("hash="), "block output: {block_out}");
        if opts.shards == 0 {
            assert!(
                block_out.contains(&format!("txns={}", opts.block_txns)),
                "block output: {block_out}"
            );
        }
    }

    // Every process serves live Prometheus metrics over HTTP.
    for index in 1..layout.total() {
        let text = http_get(spec.http_addr(index).expect("http addr"), "/metrics")
            .expect("metrics scrape");
        assert!(
            text.contains("harmony_transport_frames_total"),
            "node {index} metrics missing transport counters"
        );
        let timeline = http_get(spec.http_addr(index).expect("http addr"), "/timeline")
            .expect("timeline scrape");
        assert!(
            timeline.contains("harmonybc-timeline"),
            "node {index} timeline missing schema marker"
        );
    }

    if exercise_faults {
        // Crash the last replica, then rejoin: it must recover through
        // real-socket state sync and land back on the cluster root.
        let victim = (layout.total() - 1).to_string();
        ctl(&["crash", "--node", &victim], &dir);
        ctl(&["recover", "--node", &victim], &dir);
        let started = Instant::now();
        loop {
            let status = CtlClient::connect(spec.node_addr(layout.total() - 1).expect("addr"))
                .and_then(|mut c| c.status())
                .expect("victim status");
            if status.state == "up" && status.height == height && status.root == root {
                assert!(status.recoveries >= 1, "recovery counter");
                assert!(status.sync_blocks >= 1, "state-sync served over sockets");
                break;
            }
            assert!(
                started.elapsed() < Duration::from_secs(60),
                "crashed replica never rejoined: {status:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // Graceful stop: every listener goes away.
    ctl(&["stop"], &dir);
    let started = Instant::now();
    for index in 1..layout.total() {
        let addr = spec.node_addr(index).expect("addr");
        while TcpStream::connect(addr).is_ok() {
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "node {index} still listening after stop"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    drop(guard);
}

#[test]
fn net_smoke_flat_kafka() {
    smoke(
        "flat-kafka",
        NetOptions {
            seed: 0x5EED_0001,
            ..NetOptions::default()
        },
        true,
    );
}

#[test]
fn net_smoke_sharded_hotstuff() {
    smoke(
        "sharded-hotstuff",
        NetOptions {
            shards: 4,
            hotstuff: true,
            seed: 0x5EED_0002,
            ..NetOptions::default()
        },
        true,
    );
}

#[test]
fn net_smoke_kafka_followers_ycsb() {
    smoke(
        "kafka3-ycsb",
        NetOptions {
            workload: harmonyctl::WorkloadKind::Ycsb,
            brokers: 3,
            seed: 0x5EED_0003,
            ..NetOptions::default()
        },
        false,
    );
}
