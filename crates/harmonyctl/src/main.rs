//! `harmonyctl` — operate a HarmonyBC process cluster from the shell.
//!
//! ```text
//! harmonyctl spawn   --dir /tmp/hbc [--replicas 3] [--shards 4] [--hotstuff] ...
//! harmonyctl node    --dir /tmp/hbc --index 2        # run one node (spawn does this for you)
//! harmonyctl submit  --dir /tmp/hbc                  # stream the deterministic workload trace
//! harmonyctl status  --dir /tmp/hbc [--node 2]       # heights, roots, counters
//! harmonyctl block   --dir /tmp/hbc --node 2 --seq 3 # inspect a committed block
//! harmonyctl crash   --dir /tmp/hbc --node 3         # fault injection
//! harmonyctl recover --dir /tmp/hbc --node 3         # rejoin via real-socket state sync
//! harmonyctl reshard --dir /tmp/hbc --shards 4       # live shard split/merge at the next block
//! harmonyctl metrics --dir /tmp/hbc --node 2         # live Prometheus scrape over HTTP
//! harmonyctl simroot --dir /tmp/hbc                  # simulator reference root for this spec
//! harmonyctl stop    --dir /tmp/hbc                  # shut every process down
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use harmony_common::{Error, Result};
use harmony_node::submission_trace;
use harmony_transport::{http_get, CtlClient, NodeRuntime, SubmitClient};
use harmonyctl::{ClusterSpec, NetOptions, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("harmonyctl: {e}");
            std::process::exit(1);
        }
    }
}

const USAGE: &str = "usage: harmonyctl <spawn|node|submit|status|block|crash|recover|reshard|metrics|timeline|simroot|stop> --dir DIR [options]";

fn run(args: &[String]) -> Result<()> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(Error::InvalidArgument(USAGE.into()));
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "spawn" => spawn(&flags),
        "node" => node(&flags),
        "submit" => submit(&flags),
        "status" => status(&flags),
        "block" => block(&flags),
        "crash" => toggle(&flags, true),
        "recover" => toggle(&flags, false),
        "reshard" => reshard(&flags),
        "metrics" => scrape(&flags, "/metrics"),
        "timeline" => scrape(&flags, "/timeline"),
        "simroot" => simroot(&flags),
        "stop" => stop(&flags),
        other => Err(Error::InvalidArgument(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

/// Hand-rolled `--flag value` / `--flag` parser (offline build: no clap).
struct Flags {
    values: HashMap<String, String>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["hotstuff"];

impl Flags {
    fn parse(args: &[String]) -> Result<Flags> {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(Error::InvalidArgument(format!(
                    "unexpected argument {arg:?}\n{USAGE}"
                )));
            };
            if BOOL_FLAGS.contains(&name) {
                values.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| {
                Error::InvalidArgument(format!("--{name} needs a value\n{USAGE}"))
            })?;
            values.insert(name.to_string(), value.clone());
        }
        Ok(Flags { values })
    }

    fn dir(&self) -> Result<PathBuf> {
        self.values
            .get("dir")
            .map(PathBuf::from)
            .ok_or_else(|| Error::InvalidArgument(format!("--dir is required\n{USAGE}")))
    }

    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| Error::InvalidArgument(format!("bad value for --{name}: {raw:?}"))),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T> {
        self.get(name)?
            .ok_or_else(|| Error::InvalidArgument(format!("--{name} is required")))
    }

    fn net_options(&self) -> Result<NetOptions> {
        let mut opts = NetOptions::default();
        if let Some(w) = self.values.get("workload") {
            opts.workload = WorkloadKind::parse(w)?;
        }
        if let Some(v) = self.get("replicas")? {
            opts.replicas = v;
        }
        if let Some(v) = self.get("shards")? {
            opts.shards = v;
        }
        if self.values.contains_key("hotstuff") {
            opts.hotstuff = true;
        }
        if let Some(v) = self.get("brokers")? {
            opts.brokers = v;
        }
        if let Some(v) = self.get("block-txns")? {
            opts.block_txns = v;
        }
        if let Some(v) = self.get("txns")? {
            opts.txns = v;
        }
        if let Some(v) = self.get("rate")? {
            opts.rate_tps = v;
        }
        if let Some(v) = self.get("seed")? {
            opts.seed = v;
        }
        Ok(opts)
    }
}

/// Allocate ports, write the spec, and launch one OS process per
/// non-client node (re-invoking this same binary's `node` subcommand).
fn spawn(flags: &Flags) -> Result<()> {
    let dir = flags.dir()?;
    let spec = ClusterSpec::allocate(flags.net_options()?)?;
    spec.save(&dir)?;
    let layout = spec.layout()?;
    let binary = match flags.values.get("binary") {
        Some(path) => PathBuf::from(path),
        None => std::env::current_exe().map_err(Error::Io)?,
    };
    for index in 1..layout.total() {
        let log =
            std::fs::File::create(dir.join(format!("node-{index}.log"))).map_err(Error::Io)?;
        let child = Command::new(&binary)
            .arg("node")
            .arg("--dir")
            .arg(&dir)
            .arg("--index")
            .arg(index.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(log)
            .spawn()
            .map_err(Error::Io)?;
        println!(
            "node {index} ({role}) pid {pid} addr {addr} http {http}",
            role = layout.role(index),
            pid = child.id(),
            addr = spec.node_addr(index)?,
            http = spec.http_addr(index)?,
        );
    }
    println!("spec {}", ClusterSpec::path(&dir).display());
    Ok(())
}

/// Run one node process in the foreground until a control-plane
/// `Shutdown` arrives.
fn node(flags: &Flags) -> Result<()> {
    let dir = flags.dir()?;
    let index: usize = flags.require("index")?;
    let spec = ClusterSpec::load(&dir)?;
    let runtime = NodeRuntime::start(spec.node_runtime_config(index)?)?;
    runtime.join();
    Ok(())
}

/// Stream the spec's deterministic submission trace to the orderer.
fn submit(flags: &Flags) -> Result<()> {
    let dir = flags.dir()?;
    let spec = ClusterSpec::load(&dir)?;
    let cfg = spec.opts.cluster_config()?;
    let count: usize = flags.get("count")?.unwrap_or(spec.opts.txns);
    let trace = submission_trace(&cfg, count)?;
    let mut client = SubmitClient::connect(spec.orderer_addr()?, cfg.workload.codec()?)?;
    for submission in &trace {
        client.submit(submission)?;
    }
    client.flush()?;
    println!("submitted {} txns to {}", trace.len(), spec.orderer_addr()?);
    Ok(())
}

fn status_line(spec: &ClusterSpec, index: usize) -> Result<String> {
    let status = CtlClient::connect(spec.node_addr(index)?)?.status()?;
    let mut line = format!(
        "node {index} role={role} state={state} height={height}",
        role = status.role,
        state = status.state,
        height = status.height,
    );
    if !status.root.is_empty() {
        line.push_str(&format!(" root={}", status.root));
    }
    if !status.logical_root.is_empty() {
        line.push_str(&format!(" logical={}", status.logical_root));
    }
    line.push_str(&format!(
        " committed={} delivered={} mempool={} sealed={} recoveries={} sync_blocks={}",
        status.committed_txns,
        status.delivered,
        status.mempool_len,
        status.sealed_blocks,
        status.recoveries,
        status.sync_blocks,
    ));
    Ok(line)
}

fn status(flags: &Flags) -> Result<()> {
    let spec = ClusterSpec::load(&flags.dir()?)?;
    match flags.get::<usize>("node")? {
        Some(index) => println!("{}", status_line(&spec, index)?),
        None => {
            let layout = spec.layout()?;
            for index in 1..layout.total() {
                match status_line(&spec, index) {
                    Ok(line) => println!("{line}"),
                    Err(e) => println!("node {index} unreachable: {e}"),
                }
            }
        }
    }
    Ok(())
}

fn block(flags: &Flags) -> Result<()> {
    let spec = ClusterSpec::load(&flags.dir()?)?;
    let index: usize = flags.require("node")?;
    let seq: u64 = flags.require("seq")?;
    let shard: u32 = flags.get("shard")?.unwrap_or(0);
    let mut client = CtlClient::connect(spec.node_addr(index)?)?;
    match client.block(shard, seq)? {
        Some(b) => println!(
            "block {id} txns={txns} hash={hash} prev={prev}",
            id = b.id,
            txns = b.txns,
            hash = b.hash,
            prev = b.prev_hash,
        ),
        None => println!("block {seq} not found on node {index} shard {shard}"),
    }
    Ok(())
}

fn toggle(flags: &Flags, crash: bool) -> Result<()> {
    let spec = ClusterSpec::load(&flags.dir()?)?;
    let index: usize = flags.require("node")?;
    let mut client = CtlClient::connect(spec.node_addr(index)?)?;
    if crash {
        client.crash()?;
        println!("node {index} crashed");
    } else {
        client.recover()?;
        println!("node {index} recovering");
    }
    Ok(())
}

/// Ask the orderer to change the cluster's shard count: it seals a
/// topology-change marker block and every replica splits/merges its
/// shards at that epoch boundary, mid-workload, without restarting.
fn reshard(flags: &Flags) -> Result<()> {
    let spec = ClusterSpec::load(&flags.dir()?)?;
    let new_shards: u32 = flags.require("shards")?;
    if spec.opts.shards == 0 {
        return Err(Error::InvalidArgument(
            "this cluster runs flat replicas; reshard needs a sharded spec (--shards > 0 at spawn)"
                .into(),
        ));
    }
    let mut client = CtlClient::connect(spec.orderer_addr()?)?;
    client.reshard(new_shards)?;
    println!("reshard to {new_shards} shards scheduled at the orderer");
    Ok(())
}

/// Scrape a node's HTTP observability endpoint.
fn scrape(flags: &Flags, path: &str) -> Result<()> {
    let spec = ClusterSpec::load(&flags.dir()?)?;
    let index: usize = flags.require("node")?;
    print!("{}", http_get(spec.http_addr(index)?, path)?);
    Ok(())
}

/// Run the deterministic simulator on this spec's exact configuration
/// and print the reference height and roots a healthy process cluster
/// must converge to.
fn simroot(flags: &Flags) -> Result<()> {
    let spec = ClusterSpec::load(&flags.dir()?)?;
    let reference = harmonyctl::sim_reference(&spec.opts)?;
    println!(
        "height={} root={} logical={}",
        reference.height, reference.root, reference.logical_root
    );
    Ok(())
}

fn stop(flags: &Flags) -> Result<()> {
    let dir = flags.dir()?;
    let spec = ClusterSpec::load(&dir)?;
    let layout = spec.layout()?;
    for index in (1..layout.total()).rev() {
        match CtlClient::connect(spec.node_addr(index)?).and_then(|mut c| c.shutdown()) {
            Ok(()) => println!("node {index} stopped"),
            Err(e) => println!("node {index}: {e}"),
        }
    }
    Ok(())
}
