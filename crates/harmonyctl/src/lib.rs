//! Library half of the `harmonyctl` operator CLI.
//!
//! The one rule everything here serves: a process cluster and a
//! simulator reference must run the **same** [`ClusterConfig`], derived
//! from the same [`NetOptions`], so their committed state roots are
//! comparable bit-for-bit. The CLI therefore never hand-assembles a
//! config — both `spawn`/`node` (TCP) and `simroot` (reference) go
//! through [`NetOptions::cluster_config`], and the options travel with
//! the cluster in a `cluster.spec` file every subcommand reloads.

use std::fmt::Write as _;
use std::fs;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};

use harmony_common::{Error, Result};
use harmony_node::{
    load_ns_for_txns, Cluster, ClusterConfig, ClusterLayout, ClusterWorkload, MempoolConfig,
    OrderingMode, ShardTopology,
};
use harmony_transport::NodeRuntimeConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig, TpccConfig, YcsbConfig};

/// Workload selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Smallbank (paper §6 default).
    Smallbank,
    /// YCSB.
    Ycsb,
    /// TPC-C full mix.
    Tpcc,
}

impl WorkloadKind {
    /// Parse a CLI/spec token.
    ///
    /// # Errors
    /// Unknown workload names.
    pub fn parse(s: &str) -> Result<WorkloadKind> {
        match s {
            "smallbank" => Ok(WorkloadKind::Smallbank),
            "ycsb" => Ok(WorkloadKind::Ycsb),
            "tpcc" => Ok(WorkloadKind::Tpcc),
            other => Err(Error::InvalidArgument(format!(
                "unknown workload {other:?} (expected smallbank|ycsb|tpcc)"
            ))),
        }
    }

    /// The CLI/spec token for this workload.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Smallbank => "smallbank",
            WorkloadKind::Ycsb => "ycsb",
            WorkloadKind::Tpcc => "tpcc",
        }
    }
}

/// Options describing one network cluster — everything needed to derive
/// the shared [`ClusterConfig`] deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct NetOptions {
    /// Workload (and genesis) every replica loads.
    pub workload: WorkloadKind,
    /// Number of replicas.
    pub replicas: usize,
    /// Shards per replica; `0` keeps flat replicas.
    pub shards: usize,
    /// `true` = HotStuff BFT rounds; `false` = Kafka-style CFT.
    pub hotstuff: bool,
    /// Kafka replication factor (ignored under HotStuff). `1` means a
    /// lone leader — no follower processes.
    pub brokers: usize,
    /// Transactions per sealed block.
    pub block_txns: usize,
    /// Total transactions the run submits; must be a multiple of
    /// `block_txns` so count-driven sealing leaves no partial tail.
    pub txns: usize,
    /// Offered load of the submission trace (shapes `submitted_ns`
    /// stamps; real submission is as-fast-as-possible).
    pub rate_tps: f64,
    /// Deterministic seed shared by trace, genesis, and reference run.
    pub seed: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            workload: WorkloadKind::Smallbank,
            replicas: 3,
            shards: 0,
            hotstuff: false,
            brokers: 1,
            block_txns: 8,
            txns: 64,
            rate_tps: 20_000.0,
            seed: 0xBC_2026,
        }
    }
}

impl NetOptions {
    /// Derive the cluster configuration both the TCP processes and the
    /// simulator reference run.
    ///
    /// The network discipline: one client session (admission order =
    /// nonce order), count-driven sealing (`eager_seal` + a batch
    /// interval that never fires), and a mempool that holds the whole
    /// run — making the block stream a pure function of the submission
    /// trace, independent of arrival pacing or wall-clock jitter.
    ///
    /// # Errors
    /// Shape violations (`txns` not a positive multiple of
    /// `block_txns`, zero replicas/brokers).
    pub fn cluster_config(&self) -> Result<ClusterConfig> {
        if self.txns == 0 || self.block_txns == 0 || !self.txns.is_multiple_of(self.block_txns) {
            return Err(Error::InvalidArgument(format!(
                "txns ({}) must be a positive multiple of block_txns ({})",
                self.txns, self.block_txns
            )));
        }
        if !self.hotstuff && self.brokers == 0 {
            return Err(Error::InvalidArgument("kafka needs ≥ 1 broker".into()));
        }
        let partitions: u32 = 16;
        let open_loop = OpenLoopConfig {
            clients: 1,
            rate_tps: self.rate_tps,
            hot_share: 0.0,
        };
        let workload = match self.workload {
            WorkloadKind::Smallbank => ClusterWorkload::Smallbank(SmallbankConfig {
                accounts: 1_000,
                theta: 0.6,
                partitions: if self.shards > 0 {
                    u64::from(partitions)
                } else {
                    0
                },
                ..SmallbankConfig::default()
            }),
            WorkloadKind::Ycsb => ClusterWorkload::Ycsb(YcsbConfig {
                keys: 2_000,
                partitions: if self.shards > 0 {
                    u64::from(partitions)
                } else {
                    0
                },
                ..YcsbConfig::default()
            }),
            WorkloadKind::Tpcc => ClusterWorkload::Tpcc(TpccConfig::default()),
        };
        let cfg = ClusterConfig {
            replicas: self.replicas,
            topology: (self.shards > 0).then_some(ShardTopology {
                shards: self.shards,
                partitions,
                partitioning: None,
                checkpoint_stagger: 0,
            }),
            workload,
            ordering: if self.hotstuff {
                OrderingMode::HotStuff
            } else {
                OrderingMode::Kafka {
                    brokers: self.brokers,
                }
            },
            mempool: MempoolConfig {
                capacity: self.txns.max(MempoolConfig::default().capacity),
                ..MempoolConfig::default()
            },
            open_loop,
            load_ns: load_ns_for_txns(open_loop, self.seed, self.txns),
            drain_ns: 2_000_000_000,
            block_txns: self.block_txns,
            // Count-driven sealing: the tick never fires inside a run.
            batch_interval_ns: 1 << 50,
            eager_seal: true,
            seed: self.seed,
            ..ClusterConfig::default()
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Expected final chain height of the run: one block per
    /// `block_txns` admitted transactions.
    #[must_use]
    pub fn expected_height(&self) -> u64 {
        (self.txns / self.block_txns) as u64
    }

    fn render(&self, out: &mut String) {
        let _ = writeln!(out, "workload={}", self.workload.name());
        let _ = writeln!(out, "replicas={}", self.replicas);
        let _ = writeln!(out, "shards={}", self.shards);
        let _ = writeln!(
            out,
            "ordering={}",
            if self.hotstuff { "hotstuff" } else { "kafka" }
        );
        let _ = writeln!(out, "brokers={}", self.brokers);
        let _ = writeln!(out, "block_txns={}", self.block_txns);
        let _ = writeln!(out, "txns={}", self.txns);
        let _ = writeln!(out, "rate_tps={}", self.rate_tps);
        let _ = writeln!(out, "seed={}", self.seed);
    }
}

/// A spawned cluster on disk: the shared options plus where every node
/// listens. Index 0 (the client slot) never has an address — external
/// drivers occupy it over dynamic connections.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// The options every process derives its [`ClusterConfig`] from.
    pub opts: NetOptions,
    /// Cluster listen address per node index (`None` for the client
    /// slot).
    pub addrs: Vec<Option<SocketAddr>>,
    /// HTTP observability address per node index.
    pub https: Vec<Option<SocketAddr>>,
}

impl ClusterSpec {
    /// File name of the spec inside a cluster directory.
    pub const FILE: &'static str = "cluster.spec";

    /// Allocate loopback addresses for every non-client node and build
    /// the spec.
    ///
    /// # Errors
    /// Config shape violations or ephemeral-port allocation failures.
    pub fn allocate(opts: NetOptions) -> Result<ClusterSpec> {
        let cfg = opts.cluster_config()?;
        let layout = ClusterLayout::of(&cfg);
        // Hold all listeners until every port is drawn so the OS can't
        // hand the same ephemeral port out twice. Releasing them before
        // the node processes bind leaves an unavoidable handoff window
        // (the spec is a file, not a transferable socket); the node
        // runtime closes it by binding with bounded retry, so a port
        // still in TIME_WAIT or briefly squatted doesn't kill a spawn.
        let mut held = Vec::new();
        let mut addrs = vec![None];
        let mut https = vec![None];
        for _ in 1..layout.total() {
            let cluster = TcpListener::bind("127.0.0.1:0").map_err(Error::Io)?;
            let http = TcpListener::bind("127.0.0.1:0").map_err(Error::Io)?;
            addrs.push(Some(cluster.local_addr().map_err(Error::Io)?));
            https.push(Some(http.local_addr().map_err(Error::Io)?));
            held.push((cluster, http));
        }
        drop(held);
        Ok(ClusterSpec { opts, addrs, https })
    }

    /// Serialize to the `key=value` spec format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.opts.render(&mut out);
        for (i, addr) in self.addrs.iter().enumerate() {
            if let Some(addr) = addr {
                let _ = writeln!(out, "addr.{i}={addr}");
            }
        }
        for (i, addr) in self.https.iter().enumerate() {
            if let Some(addr) = addr {
                let _ = writeln!(out, "http.{i}={addr}");
            }
        }
        out
    }

    /// Parse the `key=value` spec format.
    ///
    /// # Errors
    /// Unknown keys, malformed values, or an inconsistent node count.
    pub fn parse(text: &str) -> Result<ClusterSpec> {
        let mut opts = NetOptions::default();
        let mut addr_slots: Vec<(usize, SocketAddr)> = Vec::new();
        let mut http_slots: Vec<(usize, SocketAddr)> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| Error::InvalidArgument(format!("spec line without '=': {line}")))?;
            let bad = |what: &str| {
                Error::InvalidArgument(format!("bad spec value for {what}: {value:?}"))
            };
            match key {
                "workload" => opts.workload = WorkloadKind::parse(value)?,
                "replicas" => opts.replicas = value.parse().map_err(|_| bad(key))?,
                "shards" => opts.shards = value.parse().map_err(|_| bad(key))?,
                "ordering" => {
                    opts.hotstuff = match value {
                        "hotstuff" => true,
                        "kafka" => false,
                        _ => return Err(bad(key)),
                    }
                }
                "brokers" => opts.brokers = value.parse().map_err(|_| bad(key))?,
                "block_txns" => opts.block_txns = value.parse().map_err(|_| bad(key))?,
                "txns" => opts.txns = value.parse().map_err(|_| bad(key))?,
                "rate_tps" => opts.rate_tps = value.parse().map_err(|_| bad(key))?,
                "seed" => opts.seed = value.parse().map_err(|_| bad(key))?,
                _ if key.starts_with("addr.") => {
                    let i: usize = key["addr.".len()..].parse().map_err(|_| bad(key))?;
                    addr_slots.push((i, value.parse().map_err(|_| bad(key))?));
                }
                _ if key.starts_with("http.") => {
                    let i: usize = key["http.".len()..].parse().map_err(|_| bad(key))?;
                    http_slots.push((i, value.parse().map_err(|_| bad(key))?));
                }
                _ => {
                    return Err(Error::InvalidArgument(format!("unknown spec key {key:?}")));
                }
            }
        }
        let layout = ClusterLayout::of(&opts.cluster_config()?);
        let mut addrs = vec![None; layout.total()];
        let mut https = vec![None; layout.total()];
        for (i, addr) in addr_slots {
            *addrs.get_mut(i).ok_or_else(|| {
                Error::InvalidArgument(format!("addr.{i} out of range for this layout"))
            })? = Some(addr);
        }
        for (i, addr) in http_slots {
            *https.get_mut(i).ok_or_else(|| {
                Error::InvalidArgument(format!("http.{i} out of range for this layout"))
            })? = Some(addr);
        }
        Ok(ClusterSpec { opts, addrs, https })
    }

    /// Path of the spec file inside `dir`.
    #[must_use]
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(ClusterSpec::FILE)
    }

    /// Load the spec from `dir`.
    ///
    /// # Errors
    /// I/O failures or parse errors.
    pub fn load(dir: &Path) -> Result<ClusterSpec> {
        let text = fs::read_to_string(ClusterSpec::path(dir)).map_err(Error::Io)?;
        ClusterSpec::parse(&text)
    }

    /// Write the spec into `dir` (creating it).
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, dir: &Path) -> Result<()> {
        fs::create_dir_all(dir).map_err(Error::Io)?;
        fs::write(ClusterSpec::path(dir), self.render()).map_err(Error::Io)
    }

    /// The cluster layout these options produce.
    ///
    /// # Errors
    /// Config shape violations.
    pub fn layout(&self) -> Result<ClusterLayout> {
        Ok(ClusterLayout::of(&self.opts.cluster_config()?))
    }

    /// The orderer's cluster listen address.
    ///
    /// # Errors
    /// A spec without an orderer address.
    pub fn orderer_addr(&self) -> Result<SocketAddr> {
        self.addrs
            .get(1)
            .copied()
            .flatten()
            .ok_or_else(|| Error::InvalidArgument("spec has no orderer address".into()))
    }

    /// The cluster listen address of node `index`.
    ///
    /// # Errors
    /// An index outside the layout or a slot without an address.
    pub fn node_addr(&self, index: usize) -> Result<SocketAddr> {
        self.addrs
            .get(index)
            .copied()
            .flatten()
            .ok_or_else(|| Error::InvalidArgument(format!("node {index} has no address")))
    }

    /// The HTTP observability address of node `index`.
    ///
    /// # Errors
    /// An index outside the layout or a slot without an endpoint.
    pub fn http_addr(&self, index: usize) -> Result<SocketAddr> {
        self.https
            .get(index)
            .copied()
            .flatten()
            .ok_or_else(|| Error::InvalidArgument(format!("node {index} has no http endpoint")))
    }

    /// Build the runtime configuration for the process hosting `index`.
    ///
    /// # Errors
    /// Config shape violations or an index without a listen address.
    pub fn node_runtime_config(&self, index: usize) -> Result<NodeRuntimeConfig> {
        Ok(NodeRuntimeConfig {
            cluster: self.opts.cluster_config()?,
            index,
            peers: self.addrs.clone(),
            http: self.https.get(index).copied().flatten(),
        })
    }
}

/// Outcome of a simulator reference run, for comparing against a live
/// process cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferenceRun {
    /// Final chain height every replica reached.
    pub height: u64,
    /// Final state root (hex).
    pub root: String,
    /// Shard-count-invariant logical root (hex).
    pub logical_root: String,
}

/// Run the deterministic simulator on the options' cluster config and
/// report the converged height and roots.
///
/// # Errors
/// Config violations, simulation failures, or a run where replicas did
/// not converge.
pub fn sim_reference(opts: &NetOptions) -> Result<ReferenceRun> {
    let report = Cluster::new(opts.cluster_config()?).run()?;
    if !report.consistent {
        return Err(Error::Consensus(
            "reference replicas did not converge".into(),
        ));
    }
    let first = report
        .replicas
        .first()
        .ok_or_else(|| Error::InvalidArgument("reference run has no replicas".into()))?;
    Ok(ReferenceRun {
        height: first.height.0,
        root: first.root.to_hex(),
        logical_root: first.logical_root.to_hex(),
    })
}
