//! Property-based tests: the B+Tree against a `BTreeMap` model under
//! arbitrary operation sequences, and codec/checkpoint roundtrips under
//! arbitrary inputs.

use std::collections::BTreeMap;
use std::sync::Arc;

use harmony_storage::btree::BTree;
use harmony_storage::checkpoint::{Manifest, TableMeta};
use harmony_storage::log::{WalRecord, WalWrite};
use harmony_storage::{BufferPool, MemDisk, PageId, StorageCost};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u16>().prop_map(Op::Delete),
        any::<u16>().prop_map(Op::Get),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
    ]
}

fn fresh_tree(capacity: usize) -> BTree {
    let pool = Arc::new(BufferPool::new(
        Arc::new(MemDisk::new()),
        capacity,
        StorageCost::free(),
    ));
    BTree::create(pool, StorageCost::free()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of puts/deletes/gets/scans behaves exactly like the
    /// standard library's ordered map.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut tree = fresh_tree(256);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let key = k.to_be_bytes().to_vec();
                    let replaced = tree.put(&key, &v).unwrap();
                    prop_assert_eq!(replaced, model.insert(key, v).is_some());
                }
                Op::Delete(k) => {
                    let key = k.to_be_bytes().to_vec();
                    prop_assert_eq!(tree.delete(&key).unwrap(), model.remove(&key).is_some());
                }
                Op::Get(k) => {
                    let key = k.to_be_bytes().to_vec();
                    prop_assert_eq!(tree.get(&key).unwrap(), model.get(&key).cloned());
                }
                Op::Scan(a, b) => {
                    let (start, end) = (a.to_be_bytes().to_vec(), b.to_be_bytes().to_vec());
                    let mut got = Vec::new();
                    tree.scan(&start, Some(&end), |k, _| {
                        got.push(k.to_vec());
                        true
                    })
                    .unwrap();
                    let expect: Vec<Vec<u8>> =
                        model.range(start..end).map(|(k, _)| k.clone()).collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
    }

    /// A tiny buffer pool (constant eviction pressure) never changes
    /// results — only performance.
    #[test]
    fn btree_correct_under_eviction_pressure(
        keys in prop::collection::vec(any::<u16>(), 1..150)
    ) {
        let mut tree = fresh_tree(4);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let key = k.to_be_bytes().to_vec();
            tree.put(&key, &(i as u64).to_le_bytes()).unwrap();
            model.insert(key, i as u64);
        }
        for (key, v) in &model {
            let got = tree.get(key).unwrap().unwrap();
            prop_assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), *v);
        }
    }

    /// WAL records survive encode/decode for arbitrary contents.
    #[test]
    fn wal_record_roundtrip(
        block in any::<u64>(),
        writes in prop::collection::vec(
            (any::<u16>(), prop::collection::vec(any::<u8>(), 0..32),
             prop::option::of(prop::collection::vec(any::<u8>(), 0..32))),
            0..20
        )
    ) {
        let rec = WalRecord {
            block: harmony_common::BlockId(block),
            writes: writes
                .into_iter()
                .map(|(t, key, value)| WalWrite {
                    table: harmony_common::ids::TableId(t),
                    key,
                    value,
                })
                .collect(),
        };
        prop_assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }

    /// Checkpoint manifests survive encode/decode, and any single-byte
    /// corruption is detected.
    #[test]
    fn manifest_roundtrip_and_corruption(
        epoch in any::<u64>(),
        block in any::<u64>(),
        tables in prop::collection::vec((any::<u16>(), "[a-z]{1,12}", any::<u64>(), any::<u64>()), 0..8),
        flip in any::<prop::sample::Index>()
    ) {
        let m = Manifest {
            epoch,
            block: harmony_common::BlockId(block),
            tables: tables
                .into_iter()
                .map(|(id, name, root, len)| TableMeta {
                    id: harmony_common::ids::TableId(id),
                    name,
                    root: PageId(root),
                    len,
                })
                .collect(),
        };
        let enc = m.encode();
        prop_assert_eq!(Manifest::decode(&enc).unwrap(), m);
        let mut bad = enc.clone();
        let pos = flip.index(bad.len());
        bad[pos] ^= 0x5A;
        // Either rejected, or (vanishingly unlikely) decodes to something
        // different — never silently equal with a flipped byte.
        if let Ok(decoded) = Manifest::decode(&bad) {
            prop_assert_ne!(decoded.encode(), enc);
        }
    }
}
