//! Append-only logs.
//!
//! Two logging disciplines from the paper's Table 1:
//!
//! * **Physical logging** (`WalRecord`): the write-sets of committed
//!   transactions, as used by the SOV blockchains and RBC. Heavyweight —
//!   every committed byte is logged.
//! * **Logical logging** (`BlockRecord`): just the input block (transaction
//!   commands), as used by deterministic databases and HarmonyBC. Almost
//!   free at runtime because determinism makes replay sufficient.
//!
//! Both are framed onto a [`LogSink`]: `[len u32][crc32c u32][payload]`,
//! with torn-tail detection on recovery.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use harmony_common::codec::{crc32c, Reader, Writer};
use harmony_common::ids::TableId;
use harmony_common::vtime;
use harmony_common::{BlockId, Error, Result};
use parking_lot::Mutex;

/// Abstract append-only record log.
pub trait LogSink: Send + Sync {
    /// Append one framed record; returns its sequence number.
    fn append(&self, payload: &[u8]) -> Result<u64>;
    /// Durability barrier.
    fn sync(&self) -> Result<()>;
    /// Read every intact record (stops cleanly at a torn tail).
    fn read_all(&self) -> Result<Vec<Vec<u8>>>;
    /// Number of records appended so far.
    fn record_count(&self) -> u64;
    /// Discard every record — a node bootstrapping from a transferred
    /// state snapshot drops its stale local history first.
    fn truncate(&self) -> Result<()>;
}

/// In-memory log with a modelled sync latency. The backing store survives
/// "crashes" (it plays the role of the device); only unsynced records are
/// discarded by [`MemLog::crash`].
pub struct MemLog {
    inner: Mutex<MemLogInner>,
    sync_ns: u64,
}

struct MemLogInner {
    durable: Vec<Vec<u8>>,
    pending: Vec<Vec<u8>>,
}

impl MemLog {
    /// New empty log charging `sync_ns` of virtual time per sync.
    #[must_use]
    pub fn new(sync_ns: u64) -> MemLog {
        MemLog {
            inner: Mutex::new(MemLogInner {
                durable: Vec::new(),
                pending: Vec::new(),
            }),
            sync_ns,
        }
    }

    /// Simulate a crash: every record not yet synced is lost.
    pub fn crash(&self) {
        self.inner.lock().pending.clear();
    }
}

impl LogSink for MemLog {
    fn append(&self, payload: &[u8]) -> Result<u64> {
        let mut inner = self.inner.lock();
        inner.pending.push(payload.to_vec());
        Ok((inner.durable.len() + inner.pending.len() - 1) as u64)
    }

    fn sync(&self) -> Result<()> {
        vtime::charge(self.sync_ns);
        let mut inner = self.inner.lock();
        let pending = std::mem::take(&mut inner.pending);
        inner.durable.extend(pending);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<Vec<u8>>> {
        let inner = self.inner.lock();
        let mut out = inner.durable.clone();
        out.extend(inner.pending.iter().cloned());
        Ok(out)
    }

    fn record_count(&self) -> u64 {
        let inner = self.inner.lock();
        (inner.durable.len() + inner.pending.len()) as u64
    }

    fn truncate(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.durable.clear();
        inner.pending.clear();
        Ok(())
    }
}

/// File-backed log with CRC framing.
pub struct FileLog {
    file: Mutex<File>,
    count: Mutex<u64>,
}

impl FileLog {
    /// Open (or create) a log file; existing intact records are preserved.
    pub fn open(path: &Path) -> Result<FileLog> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let log = FileLog {
            file: Mutex::new(file),
            count: Mutex::new(0),
        };
        let existing = log.read_all()?;
        *log.count.lock() = existing.len() as u64;
        Ok(log)
    }
}

impl LogSink for FileLog {
    fn append(&self, payload: &[u8]) -> Result<u64> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(
            &u32::try_from(payload.len())
                .map_err(|_| Error::InvalidArgument("record too large".into()))?
                .to_le_bytes(),
        );
        framed.extend_from_slice(&crc32c(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        let mut file = self.file.lock();
        file.write_all(&framed)?;
        let mut count = self.count.lock();
        let seq = *count;
        *count += 1;
        Ok(seq)
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<Vec<u8>>> {
        let mut file = self.file.lock();
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(0))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        file.seek(std::io::SeekFrom::End(0))?;
        drop(file);
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + 8 <= raw.len() {
            let len = u32::from_le_bytes(raw[off..off + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(raw[off + 4..off + 8].try_into().expect("4 bytes"));
            if off + 8 + len > raw.len() {
                break; // torn tail
            }
            let payload = &raw[off + 8..off + 8 + len];
            if crc32c(payload) != crc {
                break; // torn/corrupt tail: stop replay here
            }
            out.push(payload.to_vec());
            off += 8 + len;
        }
        Ok(out)
    }

    fn record_count(&self) -> u64 {
        *self.count.lock()
    }

    fn truncate(&self) -> Result<()> {
        let file = self.file.lock();
        file.set_len(0)?;
        file.sync_data()?;
        *self.count.lock() = 0;
        Ok(())
    }
}

/// One committed write in a physical WAL record: `None` value = delete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalWrite {
    /// Table the write applies to.
    pub table: TableId,
    /// Row key.
    pub key: Vec<u8>,
    /// New value, or `None` for a delete.
    pub value: Option<Vec<u8>>,
}

/// A physical-log record: all writes committed by one block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Block these writes belong to.
    pub block: BlockId,
    /// The write-set.
    pub writes: Vec<WalWrite>,
}

impl WalRecord {
    /// Serialize with the workspace codec.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64 + self.writes.len() * 32);
        w.put_u64(self.block.0);
        w.put_u32(u32::try_from(self.writes.len()).expect("write count"));
        for wr in &self.writes {
            w.put_u16(wr.table.0);
            w.put_bytes(&wr.key);
            match &wr.value {
                Some(v) => {
                    w.put_u8(1);
                    w.put_bytes(v);
                }
                None => w.put_u8(0),
            }
        }
        w.finish().to_vec()
    }

    /// Parse a record; errors on truncation/corruption.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(bytes);
        let block = BlockId(r.get_u64()?);
        let n = r.get_u32()? as usize;
        let mut writes = Vec::with_capacity(n);
        for _ in 0..n {
            let table = TableId(r.get_u16()?);
            let key = r.get_bytes()?;
            let value = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_bytes()?),
                t => return Err(Error::Corruption(format!("bad value tag {t}"))),
            };
            writes.push(WalWrite { table, key, value });
        }
        Ok(WalRecord { block, writes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memlog_append_sync_read() {
        let log = MemLog::new(0);
        log.append(b"a").unwrap();
        log.append(b"b").unwrap();
        log.sync().unwrap();
        log.append(b"c").unwrap();
        assert_eq!(log.record_count(), 3);
        assert_eq!(
            log.read_all().unwrap(),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
        );
    }

    #[test]
    fn memlog_crash_loses_unsynced() {
        let log = MemLog::new(0);
        log.append(b"durable").unwrap();
        log.sync().unwrap();
        log.append(b"lost").unwrap();
        log.crash();
        assert_eq!(log.read_all().unwrap(), vec![b"durable".to_vec()]);
    }

    #[test]
    fn truncate_discards_everything() {
        let log = MemLog::new(0);
        log.append(b"a").unwrap();
        log.sync().unwrap();
        log.append(b"b").unwrap();
        log.truncate().unwrap();
        assert_eq!(log.record_count(), 0);
        assert!(log.read_all().unwrap().is_empty());
        log.append(b"fresh").unwrap();
        assert_eq!(log.read_all().unwrap(), vec![b"fresh".to_vec()]);

        let path = temp_path("truncate.log");
        let _ = std::fs::remove_file(&path);
        let flog = FileLog::open(&path).unwrap();
        flog.append(b"stale").unwrap();
        flog.sync().unwrap();
        flog.truncate().unwrap();
        assert_eq!(flog.record_count(), 0);
        flog.append(b"fresh").unwrap();
        flog.sync().unwrap();
        assert_eq!(flog.read_all().unwrap(), vec![b"fresh".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memlog_sync_charges_vtime() {
        let log = MemLog::new(5_000);
        vtime::take();
        log.sync().unwrap();
        assert_eq!(vtime::take(), 5_000);
    }

    #[test]
    fn wal_record_roundtrip() {
        let rec = WalRecord {
            block: BlockId(12),
            writes: vec![
                WalWrite {
                    table: TableId(1),
                    key: b"alice".to_vec(),
                    value: Some(b"100".to_vec()),
                },
                WalWrite {
                    table: TableId(2),
                    key: b"bob".to_vec(),
                    value: None,
                },
            ],
        };
        assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn wal_record_truncation_detected() {
        let rec = WalRecord {
            block: BlockId(1),
            writes: vec![WalWrite {
                table: TableId(0),
                key: vec![1; 20],
                value: Some(vec![2; 20]),
            }],
        };
        let enc = rec.encode();
        assert!(WalRecord::decode(&enc[..enc.len() - 5]).is_err());
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("harmony-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn filelog_roundtrip_and_reopen() {
        let path = temp_path("basic.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
            log.sync().unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 2);
            assert_eq!(
                log.read_all().unwrap(),
                vec![b"one".to_vec(), b"two".to_vec()]
            );
            // Appending after reopen keeps the sequence.
            assert_eq!(log.append(b"three").unwrap(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn filelog_torn_tail_is_ignored() {
        let path = temp_path("torn.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"good").unwrap();
            log.sync().unwrap();
        }
        // Simulate a torn append: write garbage half-record at the end.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 0, 0, 0, 1, 2]).unwrap(); // len=9 but no payload
        }
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.read_all().unwrap(), vec![b"good".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn filelog_corrupt_crc_stops_replay() {
        let path = temp_path("crc.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"aaaa").unwrap();
            log.append(b"bbbb").unwrap();
            log.sync().unwrap();
        }
        // Flip one payload byte of the second record.
        {
            let mut raw = std::fs::read(&path).unwrap();
            let second_payload_start = 8 + 4 + 8;
            raw[second_payload_start] ^= 0xFF;
            std::fs::write(&path, raw).unwrap();
        }
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.read_all().unwrap(), vec![b"aaaa".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }
}
