//! Pages and page identifiers.

use std::fmt;

/// Size of one page in bytes. 4 KiB matches common SSD sector granularity
/// and the paper's PostgreSQL substrate.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a disk backend.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (used for leaf chain terminators).
    pub const NULL: PageId = PageId(u64::MAX);

    /// Whether this is the null sentinel.
    #[must_use]
    pub fn is_null(self) -> bool {
        self == PageId::NULL
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "P-")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

/// A heap-allocated page buffer.
pub struct PageBuf {
    data: Box<[u8; PAGE_SIZE]>,
}

impl PageBuf {
    /// A zeroed page.
    #[must_use]
    pub fn zeroed() -> PageBuf {
        PageBuf {
            data: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("exact size"),
        }
    }

    /// Build from raw bytes (must be exactly [`PAGE_SIZE`] long).
    ///
    /// # Panics
    /// Panics if `bytes.len() != PAGE_SIZE`.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> PageBuf {
        assert_eq!(bytes.len(), PAGE_SIZE, "page must be exactly PAGE_SIZE");
        let mut p = PageBuf::zeroed();
        p.data.copy_from_slice(bytes);
        p
    }

    /// Read view.
    #[must_use]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write view.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        PageBuf {
            data: self.data.clone(),
        }
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        PageBuf::zeroed()
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf[{PAGE_SIZE}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        let p = PageBuf::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[0] = 0xAA;
        raw[PAGE_SIZE - 1] = 0xBB;
        let p = PageBuf::from_bytes(&raw);
        assert_eq!(p.bytes()[0], 0xAA);
        assert_eq!(p.bytes()[PAGE_SIZE - 1], 0xBB);
    }

    #[test]
    #[should_panic(expected = "PAGE_SIZE")]
    fn from_bytes_wrong_len_panics() {
        let _ = PageBuf::from_bytes(&[0u8; 100]);
    }

    #[test]
    fn null_page_id() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(0).is_null());
        assert_eq!(format!("{:?}", PageId(3)), "P3");
        assert_eq!(format!("{:?}", PageId::NULL), "P-");
    }
}
