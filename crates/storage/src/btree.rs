//! Disk-resident B+Tree.
//!
//! One tree per table. Keys and values are arbitrary byte strings (bounded
//! so that any entry fits comfortably in a page); interior nodes hold
//! separators, leaves are chained for range scans — the access-path shape
//! whose index-lookup cost Harmony's update coalescence deduplicates
//! (Figure 5 of the paper).
//!
//! Concurrency: the tree itself is not latched; callers (the
//! [`crate::engine::StorageEngine`]) wrap each table in an `RwLock`.
//! Deletion removes entries without rebalancing (underfull pages are
//! tolerated), a standard simplification that preserves search correctness.

use std::sync::Arc;

use harmony_common::vtime;
use harmony_common::{Error, Result};

use crate::buffer::BufferPool;
use crate::cost::StorageCost;
use crate::page::{PageId, PAGE_SIZE};

/// Maximum combined key+value size accepted by the tree. Chosen so that a
/// page can always hold at least four entries, keeping splits productive.
pub const MAX_ENTRY_SIZE: usize = 900;

const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const HEADER_LEN: usize = 1 + 2 + 8; // tag + count + (next_leaf | child0)

/// Parsed in-memory form of one node page.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf {
        next: PageId,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    Internal {
        child0: PageId,
        entries: Vec<(Vec<u8>, PageId)>,
    },
}

impl Node {
    fn parse(bytes: &[u8]) -> Result<Node> {
        let tag = bytes[0];
        let n = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
        let mut off = 3;
        let ptr = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        off += 8;
        match tag {
            TAG_LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
                    let vlen = u16::from_le_bytes([bytes[off + 2], bytes[off + 3]]) as usize;
                    off += 4;
                    if off + klen + vlen > PAGE_SIZE {
                        return Err(Error::Corruption("leaf entry overruns page".into()));
                    }
                    let key = bytes[off..off + klen].to_vec();
                    off += klen;
                    let val = bytes[off..off + vlen].to_vec();
                    off += vlen;
                    entries.push((key, val));
                }
                Ok(Node::Leaf {
                    next: PageId(ptr),
                    entries,
                })
            }
            TAG_INTERNAL => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
                    off += 2;
                    if off + klen + 8 > PAGE_SIZE {
                        return Err(Error::Corruption("internal entry overruns page".into()));
                    }
                    let key = bytes[off..off + klen].to_vec();
                    off += klen;
                    let child =
                        u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
                    off += 8;
                    entries.push((key, PageId(child)));
                }
                Ok(Node::Internal {
                    child0: PageId(ptr),
                    entries,
                })
            }
            t => Err(Error::Corruption(format!("unknown node tag {t}"))),
        }
    }

    fn serialize_into(&self, out: &mut [u8; PAGE_SIZE]) {
        out.fill(0);
        match self {
            Node::Leaf { next, entries } => {
                out[0] = TAG_LEAF;
                out[1..3].copy_from_slice(
                    &u16::try_from(entries.len())
                        .expect("entry count")
                        .to_le_bytes(),
                );
                out[3..11].copy_from_slice(&next.0.to_le_bytes());
                let mut off = HEADER_LEN;
                for (k, v) in entries {
                    out[off..off + 2]
                        .copy_from_slice(&u16::try_from(k.len()).expect("key len").to_le_bytes());
                    out[off + 2..off + 4]
                        .copy_from_slice(&u16::try_from(v.len()).expect("val len").to_le_bytes());
                    off += 4;
                    out[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    out[off..off + v.len()].copy_from_slice(v);
                    off += v.len();
                }
            }
            Node::Internal { child0, entries } => {
                out[0] = TAG_INTERNAL;
                out[1..3].copy_from_slice(
                    &u16::try_from(entries.len())
                        .expect("entry count")
                        .to_le_bytes(),
                );
                out[3..11].copy_from_slice(&child0.0.to_le_bytes());
                let mut off = HEADER_LEN;
                for (k, child) in entries {
                    out[off..off + 2]
                        .copy_from_slice(&u16::try_from(k.len()).expect("key len").to_le_bytes());
                    off += 2;
                    out[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    out[off..off + 8].copy_from_slice(&child.0.to_le_bytes());
                    off += 8;
                }
            }
        }
    }

    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                HEADER_LEN
                    + entries
                        .iter()
                        .map(|(k, v)| 4 + k.len() + v.len())
                        .sum::<usize>()
            }
            Node::Internal { entries, .. } => {
                HEADER_LEN + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }
}

/// What an insert into a subtree produced.
enum InsertOutcome {
    /// Entry stored; `replaced` is true when an existing key was updated.
    Done { replaced: bool },
    /// The child split; the parent must add `(separator, right_page)`.
    Split {
        separator: Vec<u8>,
        right: PageId,
        replaced: bool,
    },
}

/// A B+Tree rooted at a page, performing all I/O through a buffer pool.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    cost: StorageCost,
    len: u64,
}

impl BTree {
    /// Create an empty tree (allocates one leaf page).
    pub fn create(pool: Arc<BufferPool>, cost: StorageCost) -> Result<BTree> {
        let (root, frame) = pool.allocate()?;
        let node = Node::Leaf {
            next: PageId::NULL,
            entries: Vec::new(),
        };
        node.serialize_into(frame.data.write().bytes_mut());
        frame.mark_dirty();
        Ok(BTree {
            pool,
            root,
            cost,
            len: 0,
        })
    }

    /// Re-open a tree whose root page and length are known (from the
    /// catalog / checkpoint manifest).
    #[must_use]
    pub fn open(pool: Arc<BufferPool>, root: PageId, len: u64, cost: StorageCost) -> BTree {
        BTree {
            pool,
            root,
            cost,
            len,
        }
    }

    /// Current root page (changes when the root splits).
    #[must_use]
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn load(&self, id: PageId) -> Result<Node> {
        let frame = self.pool.fetch(id)?;
        vtime::charge(self.cost.node_search_ns);
        let guard = frame.data.read();
        Node::parse(guard.bytes().as_slice())
    }

    fn store(&self, id: PageId, node: &Node) -> Result<()> {
        let frame = self.pool.fetch(id)?;
        vtime::charge(self.cost.node_write_ns);
        node.serialize_into(frame.data.write().bytes_mut());
        frame.mark_dirty();
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut pid = self.root;
        loop {
            match self.load(pid)? {
                Node::Internal { child0, entries } => {
                    pid = child_for(&entries, child0, key);
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .iter()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v.clone()));
                }
            }
        }
    }

    /// Insert or overwrite. Returns `true` if the key already existed.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        if key.len() + value.len() > MAX_ENTRY_SIZE {
            return Err(Error::InvalidArgument(format!(
                "entry of {} bytes exceeds MAX_ENTRY_SIZE={MAX_ENTRY_SIZE}",
                key.len() + value.len()
            )));
        }
        let outcome = self.insert_rec(self.root, key, value)?;
        let replaced = match outcome {
            InsertOutcome::Done { replaced } => replaced,
            InsertOutcome::Split {
                separator,
                right,
                replaced,
            } => {
                // Grow a new root.
                let (new_root, frame) = self.pool.allocate()?;
                let node = Node::Internal {
                    child0: self.root,
                    entries: vec![(separator, right)],
                };
                vtime::charge(self.cost.node_write_ns);
                node.serialize_into(frame.data.write().bytes_mut());
                frame.mark_dirty();
                self.root = new_root;
                replaced
            }
        };
        if !replaced {
            self.len += 1;
        }
        Ok(replaced)
    }

    fn insert_rec(&mut self, pid: PageId, key: &[u8], value: &[u8]) -> Result<InsertOutcome> {
        match self.load(pid)? {
            Node::Leaf { next, mut entries } => {
                let replaced = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        entries[i].1 = value.to_vec();
                        true
                    }
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        false
                    }
                };
                let node = Node::Leaf { next, entries };
                if node.serialized_size() <= PAGE_SIZE {
                    self.store(pid, &node)?;
                    return Ok(InsertOutcome::Done { replaced });
                }
                // Split the leaf in half.
                let Node::Leaf { next, mut entries } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let separator = right_entries[0].0.clone();
                let (right_pid, right_frame) = self.pool.allocate()?;
                let right = Node::Leaf {
                    next,
                    entries: right_entries,
                };
                vtime::charge(self.cost.node_write_ns);
                right.serialize_into(right_frame.data.write().bytes_mut());
                right_frame.mark_dirty();
                let left = Node::Leaf {
                    next: right_pid,
                    entries,
                };
                self.store(pid, &left)?;
                Ok(InsertOutcome::Split {
                    separator,
                    right: right_pid,
                    replaced,
                })
            }
            Node::Internal { child0, entries } => {
                let child = child_for(&entries, child0, key);
                match self.insert_rec(child, key, value)? {
                    InsertOutcome::Done { replaced } => Ok(InsertOutcome::Done { replaced }),
                    InsertOutcome::Split {
                        separator,
                        right,
                        replaced,
                    } => {
                        let mut entries = entries;
                        let pos = entries
                            .binary_search_by(|(k, _)| k.as_slice().cmp(&separator))
                            .unwrap_or_else(|i| i);
                        entries.insert(pos, (separator, right));
                        let node = Node::Internal { child0, entries };
                        if node.serialized_size() <= PAGE_SIZE {
                            self.store(pid, &node)?;
                            return Ok(InsertOutcome::Done { replaced });
                        }
                        // Split the internal node; the middle separator is
                        // promoted (not duplicated).
                        let Node::Internal {
                            child0,
                            mut entries,
                        } = node
                        else {
                            unreachable!()
                        };
                        let mid = entries.len() / 2;
                        let mut right_part = entries.split_off(mid);
                        let (promoted, right_child0) = right_part.remove(0);
                        let (right_pid, right_frame) = self.pool.allocate()?;
                        let right_node = Node::Internal {
                            child0: right_child0,
                            entries: right_part,
                        };
                        vtime::charge(self.cost.node_write_ns);
                        right_node.serialize_into(right_frame.data.write().bytes_mut());
                        right_frame.mark_dirty();
                        let left_node = Node::Internal { child0, entries };
                        self.store(pid, &left_node)?;
                        Ok(InsertOutcome::Split {
                            separator: promoted,
                            right: right_pid,
                            replaced,
                        })
                    }
                }
            }
        }
    }

    /// Remove a key. Returns `true` if it existed. Pages are never merged.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let mut pid = self.root;
        loop {
            match self.load(pid)? {
                Node::Internal { child0, entries } => {
                    pid = child_for(&entries, child0, key);
                }
                Node::Leaf { next, mut entries } => {
                    match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => {
                            entries.remove(i);
                            self.store(pid, &Node::Leaf { next, entries })?;
                            self.len -= 1;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
            }
        }
    }

    /// Range scan over `[start, end)` (whole tree if `end` is `None`),
    /// calling `f(key, value)` for each entry in order; stop early when `f`
    /// returns `false`.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        // Descend to the leaf that could contain `start`.
        let mut pid = self.root;
        loop {
            match self.load(pid)? {
                Node::Internal { child0, entries } => {
                    pid = child_for(&entries, child0, start);
                }
                Node::Leaf { next, entries } => {
                    let from = entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(start))
                        .unwrap_or_else(|i| i);
                    for (k, v) in &entries[from..] {
                        if let Some(end) = end {
                            if k.as_slice() >= end {
                                return Ok(());
                            }
                        }
                        vtime::charge(self.cost.scan_per_record_ns);
                        if !f(k, v) {
                            return Ok(());
                        }
                    }
                    let mut cur = next;
                    while !cur.is_null() {
                        match self.load(cur)? {
                            Node::Leaf { next, entries } => {
                                for (k, v) in &entries {
                                    if let Some(end) = end {
                                        if k.as_slice() >= end {
                                            return Ok(());
                                        }
                                    }
                                    vtime::charge(self.cost.scan_per_record_ns);
                                    if !f(k, v) {
                                        return Ok(());
                                    }
                                }
                                cur = next;
                            }
                            Node::Internal { .. } => {
                                return Err(Error::Corruption(
                                    "leaf chain points at internal node".into(),
                                ))
                            }
                        }
                    }
                    return Ok(());
                }
            }
        }
    }
}

/// Pick the child subtree for `key`: the rightmost entry whose separator is
/// `<= key`, or `child0` when `key` precedes every separator.
fn child_for(entries: &[(Vec<u8>, PageId)], child0: PageId, key: &[u8]) -> PageId {
    match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
        Ok(i) => entries[i].1,
        Err(0) => child0,
        Err(i) => entries[i - 1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::collections::BTreeMap;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemDisk::new()),
            1024,
            StorageCost::free(),
        ));
        BTree::create(pool, StorageCost::free()).unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn put_get_single() {
        let mut t = tree();
        assert!(!t.put(b"a", b"1").unwrap());
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"b").unwrap(), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut t = tree();
        t.put(b"k", b"v1").unwrap();
        assert!(t.put(b"k", b"v2").unwrap());
        assert_eq!(t.get(b"k").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_split_and_remain_searchable() {
        let mut t = tree();
        let n = 5_000u64;
        for i in 0..n {
            t.put(&key(i), format!("val-{i}").as_bytes()).unwrap();
        }
        assert_eq!(t.len(), n);
        for i in (0..n).step_by(97) {
            assert_eq!(
                t.get(&key(i)).unwrap(),
                Some(format!("val-{i}").into_bytes()),
                "key {i}"
            );
        }
        assert!(t.root() != PageId(0) || n < 10, "root must have split");
    }

    #[test]
    fn reverse_and_shuffled_insert_orders() {
        for mode in 0..2 {
            let mut t = tree();
            let mut order: Vec<u64> = (0..2_000).collect();
            if mode == 0 {
                order.reverse();
            } else {
                let mut rng = harmony_common::DetRng::new(5);
                rng.shuffle(&mut order);
            }
            for &i in &order {
                t.put(&key(i), &i.to_le_bytes()).unwrap();
            }
            for i in 0..2_000 {
                assert_eq!(t.get(&key(i)).unwrap(), Some(i.to_le_bytes().to_vec()));
            }
        }
    }

    #[test]
    fn delete_and_reinsert() {
        let mut t = tree();
        for i in 0..500 {
            t.put(&key(i), b"x").unwrap();
        }
        for i in (0..500).step_by(2) {
            assert!(t.delete(&key(i)).unwrap());
        }
        assert!(!t.delete(&key(0)).unwrap(), "double delete returns false");
        assert_eq!(t.len(), 250);
        for i in 0..500 {
            let expect = i % 2 == 1;
            assert_eq!(t.get(&key(i)).unwrap().is_some(), expect, "key {i}");
        }
        // Reinsert deleted keys.
        for i in (0..500).step_by(2) {
            t.put(&key(i), b"y").unwrap();
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(&key(4)).unwrap(), Some(b"y".to_vec()));
    }

    #[test]
    fn scan_full_range_in_order() {
        let mut t = tree();
        for i in 0..1_000 {
            t.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        t.scan(b"", None, |k, _| {
            seen.push(k.to_vec());
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 1_000);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "scan must be ordered");
    }

    #[test]
    fn scan_subrange_and_early_stop() {
        let mut t = tree();
        for i in 0..100 {
            t.put(&key(i), b"v").unwrap();
        }
        let mut count = 0;
        t.scan(&key(10), Some(&key(20)), |_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 10);
        let mut count = 0;
        t.scan(&key(0), None, |_, _| {
            count += 1;
            count < 5
        })
        .unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut t = tree();
        let big = vec![0u8; MAX_ENTRY_SIZE + 1];
        assert!(matches!(t.put(b"k", &big), Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn tiny_buffer_pool_still_correct() {
        // Capacity 4 frames forces constant eviction during the build.
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemDisk::new()),
            4,
            StorageCost::free(),
        ));
        let mut t = BTree::create(pool, StorageCost::free()).unwrap();
        for i in 0..2_000u64 {
            t.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        for i in (0..2_000).step_by(53) {
            assert_eq!(t.get(&key(i)).unwrap(), Some(i.to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn reopen_from_root_pointer() {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemDisk::new()),
            256,
            StorageCost::free(),
        ));
        let (root, len) = {
            let mut t = BTree::create(Arc::clone(&pool), StorageCost::free()).unwrap();
            for i in 0..800u64 {
                t.put(&key(i), &i.to_le_bytes()).unwrap();
            }
            (t.root(), t.len())
        };
        let t = BTree::open(pool, root, len, StorageCost::free());
        assert_eq!(t.len(), 800);
        assert_eq!(
            t.get(&key(799)).unwrap(),
            Some(799u64.to_le_bytes().to_vec())
        );
    }

    #[test]
    fn model_check_against_btreemap() {
        let mut t = tree();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = harmony_common::DetRng::new(99);
        for step in 0..5_000 {
            let k = key(rng.gen_range(600));
            match rng.gen_range(10) {
                0..=5 => {
                    let v = format!("v{step}").into_bytes();
                    let replaced = t.put(&k, &v).unwrap();
                    assert_eq!(replaced, model.insert(k, v).is_some());
                }
                6..=7 => {
                    let deleted = t.delete(&k).unwrap();
                    assert_eq!(deleted, model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(t.get(&k).unwrap(), model.get(&k).cloned());
                }
            }
        }
        assert_eq!(t.len(), model.len() as u64);
        // Final full comparison via scan.
        let mut scanned = Vec::new();
        t.scan(b"", None, |k, v| {
            scanned.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let expect: Vec<_> = model.into_iter().collect();
        assert_eq!(scanned, expect);
    }
}
