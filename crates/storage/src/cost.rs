//! Calibrated virtual-time cost constants for storage operations.
//!
//! These model the CPU side of a disk database — buffer-pool bookkeeping,
//! B+Tree node binary search, record (de)serialization — while the disk
//! side (read/write latency) lives in [`crate::disk::DiskProfile`].
//! Defaults are in the ballpark of a tuned disk engine on the paper's
//! E5-2620v4 nodes; the benchmark harness can sweep them.

/// Per-operation CPU costs, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageCost {
    /// Buffer-pool hit: hash probe + LRU bump.
    pub buffer_hit_ns: u64,
    /// Extra bookkeeping on a miss (frame allocation, eviction decision),
    /// on top of the disk read latency itself.
    pub buffer_miss_cpu_ns: u64,
    /// Binary search + entry decode within one B+Tree node.
    pub node_search_ns: u64,
    /// Mutating a node (insert/delete/update an entry, re-encode).
    pub node_write_ns: u64,
    /// Per record returned by a scan.
    pub scan_per_record_ns: u64,
    /// SQL-executor overhead per statement (parse/plan/executor setup) —
    /// the dominant CPU term of a PostgreSQL-class database layer.
    pub statement_ns: u64,
}

impl Default for StorageCost {
    fn default() -> Self {
        StorageCost {
            buffer_hit_ns: 250,
            buffer_miss_cpu_ns: 1_500,
            node_search_ns: 400,
            node_write_ns: 900,
            scan_per_record_ns: 120,
            statement_ns: 60_000,
        }
    }
}

impl StorageCost {
    /// Zero-cost profile for logic-only tests.
    #[must_use]
    pub fn free() -> StorageCost {
        StorageCost {
            buffer_hit_ns: 0,
            buffer_miss_cpu_ns: 0,
            node_search_ns: 0,
            node_write_ns: 0,
            scan_per_record_ns: 0,
            statement_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_positive() {
        let c = StorageCost::default();
        assert!(c.buffer_hit_ns > 0);
        assert!(c.buffer_miss_cpu_ns > c.buffer_hit_ns);
    }

    #[test]
    fn free_is_zero() {
        let c = StorageCost::free();
        assert_eq!(c.buffer_hit_ns + c.node_search_ns + c.node_write_ns, 0);
    }
}
