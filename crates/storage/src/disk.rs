//! Disk backends.
//!
//! The paper's central premise is that enterprise blockchains are
//! *disk-oriented*: data lives on SSD, DRAM only caches. Figure 21 swaps the
//! SSD for a RAMDisk and then for a pure memory engine. We reproduce that
//! axis with a [`DiskProfile`] (latency constants) applied by [`SimDisk`],
//! plus a real file-backed implementation ([`FileDisk`]) for durability
//! tests.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use harmony_common::vtime;
use harmony_common::{Error, Result};
use parking_lot::RwLock;

use crate::page::{PageBuf, PageId, PAGE_SIZE};

/// Latency profile of a storage medium, in nanoseconds per 4 KiB page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskProfile {
    /// Page read latency.
    pub read_ns: u64,
    /// Page write latency.
    pub write_ns: u64,
    /// fsync / flush barrier latency.
    pub sync_ns: u64,
}

impl DiskProfile {
    /// Data-center NVMe SSD: ~90 µs read, ~30 µs write, ~400 µs fsync —
    /// matching the 800 GB SSDs in the paper's default cluster.
    #[must_use]
    pub fn ssd() -> DiskProfile {
        DiskProfile {
            read_ns: 90_000,
            write_ns: 30_000,
            sync_ns: 400_000,
        }
    }

    /// RAMDisk: memory-speed "device" still going through the block layer
    /// (~1.5 µs per page, cheap sync). Used by Figure 21's middle bars.
    #[must_use]
    pub fn ramdisk() -> DiskProfile {
        DiskProfile {
            read_ns: 1_500,
            write_ns: 1_500,
            sync_ns: 2_000,
        }
    }

    /// Free: no latency at all (pure in-memory experiments / unit tests).
    #[must_use]
    pub fn memory() -> DiskProfile {
        DiskProfile {
            read_ns: 0,
            write_ns: 0,
            sync_ns: 0,
        }
    }
}

/// Abstract page device.
///
/// Implementations must be thread-safe; concurrent reads/writes to distinct
/// pages may proceed in parallel.
pub trait DiskBackend: Send + Sync {
    /// Read page `id` into `out`.
    fn read_page(&self, id: PageId, out: &mut PageBuf) -> Result<()>;
    /// Write `data` to page `id` (allocating backing store as needed).
    fn write_page(&self, id: PageId, data: &PageBuf) -> Result<()>;
    /// Allocate a fresh page id.
    fn allocate(&self) -> PageId;
    /// Durability barrier.
    fn sync(&self) -> Result<()>;
    /// Number of pages ever allocated.
    fn page_count(&self) -> u64;
    /// Cumulative (reads, writes, syncs) issued to the device.
    fn io_counts(&self) -> (u64, u64, u64);
}

#[derive(Default)]
struct IoCounts {
    reads: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
}

/// Purely in-memory disk: a growable vector of pages. Zero latency; the
/// baseline device other backends wrap or emulate.
pub struct MemDisk {
    pages: RwLock<Vec<Option<PageBuf>>>,
    next: AtomicU64,
    counts: IoCounts,
}

impl MemDisk {
    /// Empty disk.
    #[must_use]
    pub fn new() -> MemDisk {
        MemDisk {
            pages: RwLock::new(Vec::new()),
            next: AtomicU64::new(0),
            counts: IoCounts::default(),
        }
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        MemDisk::new()
    }
}

impl DiskBackend for MemDisk {
    fn read_page(&self, id: PageId, out: &mut PageBuf) -> Result<()> {
        self.counts.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.read();
        match pages.get(id.0 as usize).and_then(Option::as_ref) {
            Some(p) => {
                out.bytes_mut().copy_from_slice(p.bytes());
                Ok(())
            }
            None => Err(Error::NotFound(format!("page {id:?}"))),
        }
    }

    fn write_page(&self, id: PageId, data: &PageBuf) -> Result<()> {
        self.counts.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.write();
        let idx = id.0 as usize;
        if pages.len() <= idx {
            pages.resize_with(idx + 1, || None);
        }
        pages[idx] = Some(data.clone());
        Ok(())
    }

    fn allocate(&self) -> PageId {
        PageId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    fn sync(&self) -> Result<()> {
        self.counts.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    fn io_counts(&self) -> (u64, u64, u64) {
        (
            self.counts.reads.load(Ordering::Relaxed),
            self.counts.writes.load(Ordering::Relaxed),
            self.counts.syncs.load(Ordering::Relaxed),
        )
    }
}

/// A latency-modelled disk: wraps any backend and charges the profile's
/// latency to the calling thread's virtual clock on every operation.
pub struct SimDisk<D: DiskBackend> {
    inner: D,
    profile: DiskProfile,
}

impl SimDisk<MemDisk> {
    /// Fresh in-memory-backed simulated disk with the given profile.
    #[must_use]
    pub fn with_profile(profile: DiskProfile) -> SimDisk<MemDisk> {
        SimDisk {
            inner: MemDisk::new(),
            profile,
        }
    }
}

impl<D: DiskBackend> SimDisk<D> {
    /// Wrap an existing backend.
    pub fn wrap(inner: D, profile: DiskProfile) -> SimDisk<D> {
        SimDisk { inner, profile }
    }

    /// The latency profile in force.
    #[must_use]
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }
}

impl<D: DiskBackend> DiskBackend for SimDisk<D> {
    fn read_page(&self, id: PageId, out: &mut PageBuf) -> Result<()> {
        vtime::charge(self.profile.read_ns);
        self.inner.read_page(id, out)
    }

    fn write_page(&self, id: PageId, data: &PageBuf) -> Result<()> {
        vtime::charge(self.profile.write_ns);
        self.inner.write_page(id, data)
    }

    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn sync(&self) -> Result<()> {
        vtime::charge(self.profile.sync_ns);
        self.inner.sync()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn io_counts(&self) -> (u64, u64, u64) {
        self.inner.io_counts()
    }
}

/// Real file-backed disk; pages are stored at `id * PAGE_SIZE` offsets.
pub struct FileDisk {
    file: File,
    next: AtomicU64,
    counts: IoCounts,
}

impl FileDisk {
    /// Open (creating if absent) a page file at `path`. Existing content is
    /// preserved; the allocator resumes after the last full page.
    pub fn open(path: &Path) -> Result<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileDisk {
            file,
            next: AtomicU64::new(len / PAGE_SIZE as u64),
            counts: IoCounts::default(),
        })
    }
}

impl DiskBackend for FileDisk {
    fn read_page(&self, id: PageId, out: &mut PageBuf) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.counts.reads.fetch_add(1, Ordering::Relaxed);
        self.file
            .read_exact_at(out.bytes_mut().as_mut_slice(), id.0 * PAGE_SIZE as u64)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    Error::NotFound(format!("page {id:?}"))
                } else {
                    Error::Io(e)
                }
            })
    }

    fn write_page(&self, id: PageId, data: &PageBuf) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.counts.writes.fetch_add(1, Ordering::Relaxed);
        self.file
            .write_all_at(data.bytes().as_slice(), id.0 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn allocate(&self) -> PageId {
        PageId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    fn sync(&self) -> Result<()> {
        self.counts.syncs.fetch_add(1, Ordering::Relaxed);
        self.file.sync_data()?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    fn io_counts(&self) -> (u64, u64, u64) {
        (
            self.counts.reads.load(Ordering::Relaxed),
            self.counts.writes.load(Ordering::Relaxed),
            self.counts.syncs.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(byte: u8) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.bytes_mut()[0] = byte;
        p
    }

    #[test]
    fn memdisk_roundtrip() {
        let d = MemDisk::new();
        let id = d.allocate();
        d.write_page(id, &page_with(0x42)).unwrap();
        let mut out = PageBuf::zeroed();
        d.read_page(id, &mut out).unwrap();
        assert_eq!(out.bytes()[0], 0x42);
    }

    #[test]
    fn memdisk_missing_page_not_found() {
        let d = MemDisk::new();
        let mut out = PageBuf::zeroed();
        assert!(matches!(
            d.read_page(PageId(9), &mut out),
            Err(Error::NotFound(_))
        ));
    }

    #[test]
    fn memdisk_counts_io() {
        let d = MemDisk::new();
        let id = d.allocate();
        d.write_page(id, &page_with(1)).unwrap();
        let mut out = PageBuf::zeroed();
        d.read_page(id, &mut out).unwrap();
        d.sync().unwrap();
        assert_eq!(d.io_counts(), (1, 1, 1));
    }

    #[test]
    fn allocation_is_monotone() {
        let d = MemDisk::new();
        let a = d.allocate();
        let b = d.allocate();
        assert!(b.0 > a.0);
        assert_eq!(d.page_count(), 2);
    }

    #[test]
    fn simdisk_charges_latency() {
        let d = SimDisk::with_profile(DiskProfile::ssd());
        let id = d.allocate();
        vtime::take();
        d.write_page(id, &page_with(1)).unwrap();
        assert_eq!(vtime::take(), DiskProfile::ssd().write_ns);
        let mut out = PageBuf::zeroed();
        d.read_page(id, &mut out).unwrap();
        assert_eq!(vtime::take(), DiskProfile::ssd().read_ns);
        d.sync().unwrap();
        assert_eq!(vtime::take(), DiskProfile::ssd().sync_ns);
    }

    #[test]
    fn profiles_ordered() {
        assert!(DiskProfile::ssd().read_ns > DiskProfile::ramdisk().read_ns);
        assert!(DiskProfile::ramdisk().read_ns > DiskProfile::memory().read_ns);
    }

    #[test]
    fn filedisk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("harmony-fd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        {
            let d = FileDisk::open(&path).unwrap();
            let id = d.allocate();
            d.write_page(id, &page_with(0x77)).unwrap();
            d.sync().unwrap();
        }
        {
            let d = FileDisk::open(&path).unwrap();
            assert_eq!(d.page_count(), 1);
            let mut out = PageBuf::zeroed();
            d.read_page(PageId(0), &mut out).unwrap();
            assert_eq!(out.bytes()[0], 0x77);
            // Allocation resumes past existing pages.
            assert_eq!(d.allocate(), PageId(1));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn filedisk_missing_page_not_found() {
        let dir = std::env::temp_dir().join(format!("harmony-fd2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let d = FileDisk::open(&path).unwrap();
        let mut out = PageBuf::zeroed();
        assert!(matches!(
            d.read_page(PageId(5), &mut out),
            Err(Error::NotFound(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
