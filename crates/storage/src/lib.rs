//! Disk-oriented storage engine — the substrate standing in for PostgreSQL
//! in the paper's database layer.
//!
//! Layered exactly like a classic disk database:
//!
//! * [`disk`] — pluggable disk backends: an in-memory disk, a latency-model
//!   disk (`SimDisk`, parameterized by a [`DiskProfile`] such as
//!   SSD/RAMDisk), and a real file-backed disk.
//! * [`page`] — 4 KiB pages and page ids.
//! * [`buffer`] — a buffer pool with LRU eviction, pinning and dirty
//!   tracking; every hit/miss charges calibrated virtual-time costs.
//! * [`btree`] — a B+Tree keyed by arbitrary byte strings, one per table,
//!   with leaf chaining for range scans.
//! * [`log`] — append-only logs: a physical write-set WAL (used by the SOV
//!   baselines) and the logical block log (used by OE chains).
//! * [`checkpoint`] — double-slot checkpoint manifests for crash recovery.
//! * [`engine`] — the [`StorageEngine`] facade: a catalog of tables, typed
//!   get/put/delete/scan, checkpoint/recover, and I/O counters.

pub mod btree;
pub mod buffer;
pub mod checkpoint;
pub mod cost;
pub mod disk;
pub mod engine;
pub mod log;
pub mod page;

pub use buffer::{BufferPool, EvictionPolicy};
pub use cost::StorageCost;
pub use disk::{DiskBackend, DiskProfile, FileDisk, MemDisk, SimDisk};
pub use engine::{IoSnapshot, ScanItem, StorageConfig, StorageEngine, TableHandle};
pub use page::{PageBuf, PageId, PAGE_SIZE};
