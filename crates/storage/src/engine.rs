//! The [`StorageEngine`] facade: a catalog of B+Tree tables behind one
//! buffer pool, plus the logs and checkpoint machinery a blockchain's
//! database layer needs.
//!
//! The engine is the reproduction's stand-in for PostgreSQL: disk-resident
//! tables, DRAM buffer pool, physical WAL (for SOV baselines), logical block
//! log and fuzzy checkpoints (for OE chains, HarmonyBC's discipline).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_common::{BlockId, Error, Result};
use parking_lot::{Mutex, RwLock};

use crate::btree::BTree;
use crate::buffer::{BufferPool, EvictionPolicy, PoolStats};
use crate::checkpoint::{FileManifestStore, Manifest, ManifestStore, MemManifestStore, TableMeta};
use crate::cost::StorageCost;
use crate::disk::{DiskBackend, DiskProfile, FileDisk, MemDisk, SimDisk};
use crate::log::{FileLog, LogSink, MemLog};

/// Storage engine configuration.
#[derive(Clone, Debug)]
pub struct StorageConfig {
    /// Buffer pool capacity in pages (4 KiB each).
    pub buffer_pages: usize,
    /// Latency profile applied to the (simulated) disk. Ignored for
    /// file-backed engines, which pay real I/O latency.
    pub disk_profile: DiskProfile,
    /// CPU cost constants for storage operations.
    pub cost: StorageCost,
    /// When `Some`, the engine persists to files under this directory;
    /// when `None`, it runs on a simulated in-memory disk.
    pub data_dir: Option<PathBuf>,
    /// Virtual-time cost of a log sync on the simulated log device.
    pub log_sync_ns: u64,
    /// Buffer-pool eviction policy.
    pub eviction: EvictionPolicy,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            buffer_pages: 4096, // 16 MiB of cache
            disk_profile: DiskProfile::ssd(),
            cost: StorageCost::default(),
            data_dir: None,
            log_sync_ns: DiskProfile::ssd().sync_ns,
            eviction: EvictionPolicy::NoSteal,
        }
    }
}

impl StorageConfig {
    /// An all-in-memory, zero-latency configuration for tests.
    #[must_use]
    pub fn memory() -> StorageConfig {
        StorageConfig {
            buffer_pages: 4096,
            disk_profile: DiskProfile::memory(),
            cost: StorageCost::free(),
            data_dir: None,
            log_sync_ns: 0,
            eviction: EvictionPolicy::NoSteal,
        }
    }
}

/// One key/value pair returned by a scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanItem {
    /// Row key.
    pub key: Vec<u8>,
    /// Row value.
    pub value: Vec<u8>,
}

/// Handle to one table (shared tree behind a lock).
#[derive(Clone)]
pub struct TableHandle {
    /// Table id.
    pub id: TableId,
    tree: Arc<RwLock<BTree>>,
}

/// Point-in-time view of the engine's I/O activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Buffer pool counters.
    pub pool: PoolStats,
    /// Pages read from the disk device.
    pub disk_reads: u64,
    /// Pages written to the disk device.
    pub disk_writes: u64,
    /// Device sync barriers.
    pub disk_syncs: u64,
    /// Records in the physical WAL.
    pub wal_records: u64,
    /// Records in the logical block log.
    pub block_records: u64,
}

impl IoSnapshot {
    /// Counter-wise accumulation (`self += other`) — aggregating several
    /// engines' activity (e.g. the shards of one replica). Lives next to
    /// the struct so a new counter cannot be silently dropped by a
    /// hand-rolled merge at a call site.
    pub fn absorb(&mut self, other: &IoSnapshot) {
        self.pool.hits += other.pool.hits;
        self.pool.misses += other.pool.misses;
        self.pool.evict_writebacks += other.pool.evict_writebacks;
        self.pool.flush_writebacks += other.pool.flush_writebacks;
        self.disk_reads += other.disk_reads;
        self.disk_writes += other.disk_writes;
        self.disk_syncs += other.disk_syncs;
        self.wal_records += other.wal_records;
        self.block_records += other.block_records;
    }

    /// Counter-wise difference (`self - earlier`), for measuring a phase.
    #[must_use]
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pool: PoolStats {
                hits: self.pool.hits - earlier.pool.hits,
                misses: self.pool.misses - earlier.pool.misses,
                evict_writebacks: self.pool.evict_writebacks - earlier.pool.evict_writebacks,
                flush_writebacks: self.pool.flush_writebacks - earlier.pool.flush_writebacks,
            },
            disk_reads: self.disk_reads - earlier.disk_reads,
            disk_writes: self.disk_writes - earlier.disk_writes,
            disk_syncs: self.disk_syncs - earlier.disk_syncs,
            wal_records: self.wal_records - earlier.wal_records,
            block_records: self.block_records - earlier.block_records,
        }
    }
}

/// A disk-oriented multi-table storage engine.
pub struct StorageEngine {
    pool: Arc<BufferPool>,
    tables: RwLock<HashMap<TableId, TableHandle>>,
    names: RwLock<HashMap<String, TableId>>,
    next_table: Mutex<u16>,
    manifest_store: Arc<dyn ManifestStore>,
    wal: Arc<dyn LogSink>,
    block_log: Arc<dyn LogSink>,
    cost: StorageCost,
    epoch: Mutex<u64>,
    last_checkpoint: Mutex<Option<BlockId>>,
}

impl StorageEngine {
    /// Open an engine per `config`, loading the latest checkpoint manifest
    /// if one exists.
    pub fn open(config: &StorageConfig) -> Result<StorageEngine> {
        #[allow(clippy::type_complexity)]
        let (disk, manifest_store, wal, block_log): (
            Arc<dyn DiskBackend>,
            Arc<dyn ManifestStore>,
            Arc<dyn LogSink>,
            Arc<dyn LogSink>,
        ) = match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                (
                    Arc::new(FileDisk::open(&dir.join("pages.db"))?),
                    Arc::new(FileManifestStore::new(dir)),
                    Arc::new(FileLog::open(&dir.join("wal.log"))?),
                    Arc::new(FileLog::open(&dir.join("blocks.log"))?),
                )
            }
            None => (
                Arc::new(SimDisk::wrap(MemDisk::new(), config.disk_profile)),
                Arc::new(MemManifestStore::new()),
                Arc::new(MemLog::new(config.log_sync_ns)),
                Arc::new(MemLog::new(config.log_sync_ns)),
            ),
        };
        let pool = Arc::new(BufferPool::with_policy(
            disk,
            config.buffer_pages,
            config.cost,
            config.eviction,
        ));
        let engine = StorageEngine {
            pool,
            tables: RwLock::new(HashMap::new()),
            names: RwLock::new(HashMap::new()),
            next_table: Mutex::new(0),
            manifest_store,
            wal,
            block_log,
            cost: config.cost,
            epoch: Mutex::new(0),
            last_checkpoint: Mutex::new(None),
        };
        engine.load_latest_manifest()?;
        Ok(engine)
    }

    fn load_latest_manifest(&self) -> Result<()> {
        let Some(manifest) = self.manifest_store.read_latest()? else {
            return Ok(());
        };
        let mut tables = self.tables.write();
        let mut names = self.names.write();
        tables.clear();
        names.clear();
        let mut max_id = 0u16;
        for meta in &manifest.tables {
            let tree = BTree::open(Arc::clone(&self.pool), meta.root, meta.len, self.cost);
            tables.insert(
                meta.id,
                TableHandle {
                    id: meta.id,
                    tree: Arc::new(RwLock::new(tree)),
                },
            );
            names.insert(meta.name.clone(), meta.id);
            max_id = max_id.max(meta.id.0 + 1);
        }
        *self.next_table.lock() = max_id;
        *self.epoch.lock() = manifest.epoch;
        *self.last_checkpoint.lock() = Some(manifest.block);
        Ok(())
    }

    /// Create a table, or return the existing id when the name is taken.
    pub fn create_table(&self, name: &str) -> Result<TableId> {
        if let Some(id) = self.names.read().get(name) {
            return Ok(*id);
        }
        let mut names = self.names.write();
        if let Some(id) = names.get(name) {
            return Ok(*id);
        }
        let id = {
            let mut next = self.next_table.lock();
            let id = TableId(*next);
            *next += 1;
            id
        };
        let tree = BTree::create(Arc::clone(&self.pool), self.cost)?;
        self.tables.write().insert(
            id,
            TableHandle {
                id,
                tree: Arc::new(RwLock::new(tree)),
            },
        );
        names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a table id by name.
    #[must_use]
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.names.read().get(name).copied()
    }

    /// Handle for a table (clone-cheap; use for hot paths).
    pub fn table(&self, id: TableId) -> Result<TableHandle> {
        self.tables
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {id:?}")))
    }

    /// Names and ids of every table.
    #[must_use]
    pub fn list_tables(&self) -> Vec<(String, TableId)> {
        let mut v: Vec<(String, TableId)> = self
            .names
            .read()
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        v.sort_by_key(|a| a.1);
        v
    }

    /// Point read.
    pub fn get(&self, table: TableId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        harmony_common::vtime::charge(self.cost.statement_ns);
        self.table(table)?.tree.read().get(key)
    }

    /// Insert or overwrite.
    pub fn put(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<()> {
        harmony_common::vtime::charge(self.cost.statement_ns);
        self.table(table)?.tree.write().put(key, value)?;
        Ok(())
    }

    /// Delete; returns whether the key existed.
    pub fn delete(&self, table: TableId, key: &[u8]) -> Result<bool> {
        harmony_common::vtime::charge(self.cost.statement_ns);
        self.table(table)?.tree.write().delete(key)
    }

    /// Ordered scan over `[start, end)` (unbounded when `end` is `None`).
    pub fn scan(
        &self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        harmony_common::vtime::charge(self.cost.statement_ns);
        self.table(table)?.tree.read().scan(start, end, f)
    }

    /// Scan into a vector (convenience; respects `limit`).
    pub fn scan_collect(
        &self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        let mut out = Vec::new();
        self.scan(table, start, end, |k, v| {
            out.push(ScanItem {
                key: k.to_vec(),
                value: v.to_vec(),
            });
            out.len() < limit
        })?;
        Ok(out)
    }

    /// Number of live rows in a table.
    pub fn table_len(&self, table: TableId) -> Result<u64> {
        Ok(self.table(table)?.tree.read().len())
    }

    /// The physical write-ahead log (SOV baselines).
    #[must_use]
    pub fn wal(&self) -> &Arc<dyn LogSink> {
        &self.wal
    }

    /// The logical block log (OE chains).
    #[must_use]
    pub fn block_log(&self) -> &Arc<dyn LogSink> {
        &self.block_log
    }

    /// Checkpoint: flush all dirty pages, then persist a manifest declaring
    /// `block` as fully durable. Crash-safe via double-slot manifests.
    pub fn checkpoint(&self, block: BlockId) -> Result<()> {
        self.pool.flush_all()?;
        let tables = self.tables.read();
        let names = self.names.read();
        let mut metas: Vec<TableMeta> = Vec::with_capacity(tables.len());
        for (name, id) in names.iter() {
            let handle = &tables[id];
            let tree = handle.tree.read();
            metas.push(TableMeta {
                id: *id,
                name: name.clone(),
                root: tree.root(),
                len: tree.len(),
            });
        }
        metas.sort_by_key(|a| a.id);
        let epoch = {
            let mut e = self.epoch.lock();
            *e += 1;
            *e
        };
        self.manifest_store.write(&Manifest {
            epoch,
            block,
            tables: metas,
        })?;
        *self.last_checkpoint.lock() = Some(block);
        Ok(())
    }

    /// Block id of the latest completed checkpoint.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<BlockId> {
        *self.last_checkpoint.lock()
    }

    /// Simulate a crash for in-memory engines: the buffer cache (and with
    /// it every un-checkpointed page) is discarded, then the engine reloads
    /// the latest manifest — exactly what [`StorageEngine::open`] would do
    /// after a real restart on a file-backed engine.
    pub fn crash_and_recover(&self) -> Result<()> {
        self.pool.clear_cache_discarding_dirty();
        self.tables.write().clear();
        self.names.write().clear();
        *self.next_table.lock() = 0;
        *self.last_checkpoint.lock() = None;
        self.load_latest_manifest()?;
        Ok(())
    }

    /// Current I/O counters.
    #[must_use]
    pub fn io_snapshot(&self) -> IoSnapshot {
        let (disk_reads, disk_writes, disk_syncs) = self.pool.disk().io_counts();
        IoSnapshot {
            pool: self.pool.stats(),
            disk_reads,
            disk_writes,
            disk_syncs,
            wal_records: self.wal.record_count(),
            block_records: self.block_log.record_count(),
        }
    }

    /// The buffer pool (exposed for benchmarks that want its stats).
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> StorageEngine {
        StorageEngine::open(&StorageConfig::memory()).unwrap()
    }

    #[test]
    fn create_and_reuse_table() {
        let e = engine();
        let a = e.create_table("accounts").unwrap();
        let b = e.create_table("accounts").unwrap();
        assert_eq!(a, b);
        let c = e.create_table("orders").unwrap();
        assert_ne!(a, c);
        assert_eq!(e.table_id("accounts"), Some(a));
        assert_eq!(e.table_id("nope"), None);
        assert_eq!(e.list_tables().len(), 2);
    }

    #[test]
    fn put_get_delete() {
        let e = engine();
        let t = e.create_table("t").unwrap();
        e.put(t, b"k", b"v").unwrap();
        assert_eq!(e.get(t, b"k").unwrap(), Some(b"v".to_vec()));
        assert!(e.delete(t, b"k").unwrap());
        assert_eq!(e.get(t, b"k").unwrap(), None);
        assert!(!e.delete(t, b"k").unwrap());
    }

    #[test]
    fn unknown_table_errors() {
        let e = engine();
        assert!(matches!(e.get(TableId(42), b"k"), Err(Error::NotFound(_))));
    }

    #[test]
    fn scan_collect_with_limit() {
        let e = engine();
        let t = e.create_table("t").unwrap();
        for i in 0..20u8 {
            e.put(t, &[i], &[i]).unwrap();
        }
        let items = e.scan_collect(t, &[5], Some(&[15]), 100).unwrap();
        assert_eq!(items.len(), 10);
        assert_eq!(items[0].key, vec![5]);
        let limited = e.scan_collect(t, &[0], None, 3).unwrap();
        assert_eq!(limited.len(), 3);
    }

    #[test]
    fn checkpoint_then_crash_recovers_checkpointed_state() {
        let e = engine();
        let t = e.create_table("bank").unwrap();
        for i in 0..500u64 {
            e.put(t, &i.to_be_bytes(), b"pre-checkpoint").unwrap();
        }
        e.checkpoint(BlockId(10)).unwrap();
        // Post-checkpoint writes that must disappear on crash.
        for i in 0..500u64 {
            e.put(t, &i.to_be_bytes(), b"post-checkpoint").unwrap();
        }
        e.put(t, b"new-key", b"x").unwrap();
        e.crash_and_recover().unwrap();
        assert_eq!(e.last_checkpoint(), Some(BlockId(10)));
        assert_eq!(
            e.get(t, &7u64.to_be_bytes()).unwrap(),
            Some(b"pre-checkpoint".to_vec())
        );
        assert_eq!(e.get(t, b"new-key").unwrap(), None);
        assert_eq!(e.table_len(t).unwrap(), 500);
    }

    #[test]
    fn crash_without_checkpoint_loses_everything() {
        let e = engine();
        let t = e.create_table("t").unwrap();
        e.put(t, b"a", b"1").unwrap();
        e.crash_and_recover().unwrap();
        // No manifest: catalog is empty again.
        assert_eq!(e.table_id("t"), None);
        assert!(e.get(t, b"a").is_err());
    }

    #[test]
    fn second_checkpoint_supersedes_first() {
        let e = engine();
        let t = e.create_table("t").unwrap();
        e.put(t, b"k", b"v1").unwrap();
        e.checkpoint(BlockId(1)).unwrap();
        e.put(t, b"k", b"v2").unwrap();
        e.checkpoint(BlockId(2)).unwrap();
        e.crash_and_recover().unwrap();
        assert_eq!(e.get(t, b"k").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(e.last_checkpoint(), Some(BlockId(2)));
    }

    #[test]
    fn io_snapshot_counts_grow() {
        let e = engine();
        let t = e.create_table("t").unwrap();
        let before = e.io_snapshot();
        for i in 0..100u8 {
            e.put(t, &[i], &[i]).unwrap();
        }
        e.checkpoint(BlockId(0)).unwrap();
        let after = e.io_snapshot();
        let delta = after.delta_since(&before);
        assert!(delta.pool.hits > 0);
        assert!(delta.disk_writes > 0, "checkpoint must write pages");
        assert!(delta.disk_syncs >= 1);
    }

    #[test]
    fn file_backed_engine_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "harmony-engine-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let config = StorageConfig {
            data_dir: Some(dir.clone()),
            cost: StorageCost::free(),
            ..StorageConfig::memory()
        };
        let t = {
            let e = StorageEngine::open(&config).unwrap();
            let t = e.create_table("persist").unwrap();
            for i in 0..200u64 {
                e.put(t, &i.to_be_bytes(), &i.to_le_bytes()).unwrap();
            }
            e.checkpoint(BlockId(5)).unwrap();
            t
        };
        let e = StorageEngine::open(&config).unwrap();
        assert_eq!(e.table_id("persist"), Some(t));
        assert_eq!(e.last_checkpoint(), Some(BlockId(5)));
        assert_eq!(
            e.get(t, &42u64.to_be_bytes()).unwrap(),
            Some(42u64.to_le_bytes().to_vec())
        );
        assert_eq!(e.table_len(t).unwrap(), 200);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let e = Arc::new(engine());
        let t = e.create_table("t").unwrap();
        for i in 0..64u8 {
            e.put(t, &[i], &[0]).unwrap();
        }
        let mut handles = Vec::new();
        for w in 0..4u8 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for round in 0..100u8 {
                    let key = [w * 16 + (round % 16)];
                    e.put(t, &key, &[round]).unwrap();
                    let _ = e.get(t, &[round % 64]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.table_len(t).unwrap(), 64);
    }
}
