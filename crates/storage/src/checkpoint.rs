//! Checkpoint manifests.
//!
//! HarmonyBC checkpoints every `p` blocks: flush dirty pages, then persist a
//! manifest recording the checkpointed block id and each table's B+Tree
//! root. Manifests are written to *alternating slots* so that a crash during
//! checkpointing still leaves the previous manifest intact (the paper relies
//! on PostgreSQL's multi-versioned storage for the same guarantee).

use std::fs;
use std::path::PathBuf;

use harmony_common::codec::{crc32c, Reader, Writer};
use harmony_common::ids::TableId;
use harmony_common::{BlockId, Error, Result};
use parking_lot::Mutex;

use crate::page::PageId;

const MANIFEST_MAGIC: u32 = 0x4843_4B50; // "HCKP"

/// Catalog entry for one table inside a manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableMeta {
    /// Table id (stable across restarts).
    pub id: TableId,
    /// Human-readable table name.
    pub name: String,
    /// Root page of the table's B+Tree at checkpoint time.
    pub root: PageId,
    /// Number of live entries at checkpoint time.
    pub len: u64,
}

/// A checkpoint manifest: everything needed to reopen the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonically increasing manifest epoch (picks the newer slot).
    pub epoch: u64,
    /// Last block whose effects are fully contained in the flushed pages.
    pub block: BlockId,
    /// Table catalog.
    pub tables: Vec<TableMeta>,
}

impl Manifest {
    /// Serialize with magic + CRC trailer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64 + self.tables.len() * 48);
        w.put_u32(MANIFEST_MAGIC);
        w.put_u64(self.epoch);
        w.put_u64(self.block.0);
        w.put_u32(u32::try_from(self.tables.len()).expect("table count"));
        for t in &self.tables {
            w.put_u16(t.id.0);
            w.put_str(&t.name);
            w.put_u64(t.root.0);
            w.put_u64(t.len);
        }
        let body = w.finish().to_vec();
        let mut out = body.clone();
        out.extend_from_slice(&crc32c(&body).to_le_bytes());
        out
    }

    /// Decode and verify a manifest blob.
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < 4 {
            return Err(Error::Corruption("manifest too short".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32c(body) != crc {
            return Err(Error::Corruption("manifest CRC mismatch".into()));
        }
        let mut r = Reader::new(body);
        if r.get_u32()? != MANIFEST_MAGIC {
            return Err(Error::Corruption("bad manifest magic".into()));
        }
        let epoch = r.get_u64()?;
        let block = BlockId(r.get_u64()?);
        let n = r.get_u32()? as usize;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            let id = TableId(r.get_u16()?);
            let name = r.get_str()?;
            let root = PageId(r.get_u64()?);
            let len = r.get_u64()?;
            tables.push(TableMeta {
                id,
                name,
                root,
                len,
            });
        }
        Ok(Manifest {
            epoch,
            block,
            tables,
        })
    }
}

/// Double-slot manifest storage.
pub trait ManifestStore: Send + Sync {
    /// Persist `m` to the slot *not* holding the current latest manifest.
    fn write(&self, m: &Manifest) -> Result<()>;
    /// Load the manifest with the highest epoch among intact slots.
    fn read_latest(&self) -> Result<Option<Manifest>>;
}

/// In-memory double-slot store (the "device" survives crash simulations).
#[derive(Default)]
pub struct MemManifestStore {
    slots: Mutex<[Option<Vec<u8>>; 2]>,
}

impl MemManifestStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> MemManifestStore {
        MemManifestStore::default()
    }

    /// Corrupt slot `i` (tests).
    pub fn corrupt_slot(&self, i: usize) {
        let mut slots = self.slots.lock();
        if let Some(blob) = slots[i].as_mut() {
            if let Some(b) = blob.first_mut() {
                *b ^= 0xFF;
            }
        }
    }
}

impl ManifestStore for MemManifestStore {
    fn write(&self, m: &Manifest) -> Result<()> {
        let mut slots = self.slots.lock();
        let target = pick_write_slot(&[
            slots[0].as_deref().and_then(|b| Manifest::decode(b).ok()),
            slots[1].as_deref().and_then(|b| Manifest::decode(b).ok()),
        ]);
        slots[target] = Some(m.encode());
        Ok(())
    }

    fn read_latest(&self) -> Result<Option<Manifest>> {
        let slots = self.slots.lock();
        Ok(latest_of(&[
            slots[0].as_deref().and_then(|b| Manifest::decode(b).ok()),
            slots[1].as_deref().and_then(|b| Manifest::decode(b).ok()),
        ]))
    }
}

/// File-backed double-slot store: `manifest.0` / `manifest.1`.
pub struct FileManifestStore {
    paths: [PathBuf; 2],
}

impl FileManifestStore {
    /// Store under `dir`.
    #[must_use]
    pub fn new(dir: &std::path::Path) -> FileManifestStore {
        FileManifestStore {
            paths: [dir.join("manifest.0"), dir.join("manifest.1")],
        }
    }

    fn load_slot(&self, i: usize) -> Option<Manifest> {
        fs::read(&self.paths[i])
            .ok()
            .and_then(|b| Manifest::decode(&b).ok())
    }
}

impl ManifestStore for FileManifestStore {
    fn write(&self, m: &Manifest) -> Result<()> {
        let target = pick_write_slot(&[self.load_slot(0), self.load_slot(1)]);
        let tmp = self.paths[target].with_extension("tmp");
        fs::write(&tmp, m.encode())?;
        fs::rename(&tmp, &self.paths[target])?;
        Ok(())
    }

    fn read_latest(&self) -> Result<Option<Manifest>> {
        Ok(latest_of(&[self.load_slot(0), self.load_slot(1)]))
    }
}

fn epoch_of(m: &Option<Manifest>) -> Option<u64> {
    m.as_ref().map(|m| m.epoch)
}

/// Write over the slot with the older (or missing) manifest.
fn pick_write_slot(slots: &[Option<Manifest>; 2]) -> usize {
    match (epoch_of(&slots[0]), epoch_of(&slots[1])) {
        (None, _) => 0,
        (_, None) => 1,
        (Some(a), Some(b)) => usize::from(a >= b),
    }
}

fn latest_of(slots: &[Option<Manifest>; 2]) -> Option<Manifest> {
    match (&slots[0], &slots[1]) {
        (Some(a), Some(b)) => Some(if a.epoch >= b.epoch {
            a.clone()
        } else {
            b.clone()
        }),
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(epoch: u64, block: u64) -> Manifest {
        Manifest {
            epoch,
            block: BlockId(block),
            tables: vec![TableMeta {
                id: TableId(3),
                name: "accounts".into(),
                root: PageId(17),
                len: 10_000,
            }],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = manifest(5, 40);
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn corrupt_blob_rejected() {
        let mut blob = manifest(1, 2).encode();
        blob[6] ^= 0x01;
        assert!(matches!(Manifest::decode(&blob), Err(Error::Corruption(_))));
    }

    #[test]
    fn mem_store_alternates_slots_and_survives_torn_write() {
        let s = MemManifestStore::new();
        assert!(s.read_latest().unwrap().is_none());
        s.write(&manifest(1, 10)).unwrap();
        s.write(&manifest(2, 20)).unwrap();
        assert_eq!(s.read_latest().unwrap().unwrap().epoch, 2);
        // Corrupting the newest slot falls back to the previous checkpoint.
        // Epoch 2 went to the slot not holding epoch 1.
        s.write(&manifest(3, 30)).unwrap(); // overwrote slot of epoch 1
        s.corrupt_slot(if pick_write_slot(&[None, None]) == 0 {
            1
        } else {
            0
        });
        // Regardless of which physical slot epoch 3 landed in, at least one
        // intact manifest must remain readable.
        let latest = s.read_latest().unwrap().unwrap();
        assert!(latest.epoch == 3 || latest.epoch == 2);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("harmony-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(dir.join("manifest.0"));
        let _ = std::fs::remove_file(dir.join("manifest.1"));
        let s = FileManifestStore::new(&dir);
        assert!(s.read_latest().unwrap().is_none());
        s.write(&manifest(1, 100)).unwrap();
        s.write(&manifest(2, 200)).unwrap();
        s.write(&manifest(3, 300)).unwrap();
        let latest = s.read_latest().unwrap().unwrap();
        assert_eq!(latest.epoch, 3);
        assert_eq!(latest.block, BlockId(300));
        // Both slots exist: epoch 2 and epoch 3.
        let s2 = FileManifestStore::new(&dir);
        assert_eq!(s2.read_latest().unwrap().unwrap().epoch, 3);
    }

    #[test]
    fn pick_slot_logic() {
        assert_eq!(pick_write_slot(&[None, None]), 0);
        assert_eq!(pick_write_slot(&[Some(manifest(1, 0)), None]), 1);
        assert_eq!(
            pick_write_slot(&[Some(manifest(5, 0)), Some(manifest(4, 0))]),
            1,
            "overwrite the older slot"
        );
        assert_eq!(
            pick_write_slot(&[Some(manifest(4, 0)), Some(manifest(5, 0))]),
            0
        );
    }
}
