//! Buffer pool: the DRAM cache in front of the disk backend.
//!
//! The paper's cost story for disk-oriented blockchains hinges on this
//! component — "disk-based databases would use all sorts of techniques
//! (e.g., DRAM buffer pools and group commit) to hide I/O latency" (§3).
//! The pool implements LRU eviction with pin counts (a frame whose guard is
//! still referenced is never evicted), dirty tracking with write-back, and
//! charges calibrated virtual-time costs for hits and misses so the
//! benchmark scheduler sees realistic hit/miss asymmetry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use harmony_common::vtime;
use harmony_common::Result;
use parking_lot::{Mutex, RwLock};

use crate::cost::StorageCost;
use crate::disk::DiskBackend;
use crate::page::{PageBuf, PageId};

/// A cached page frame. The data lock serializes readers/writers of the
/// page content; `dirty` is flipped by writers and cleared by flushes.
pub struct Frame {
    /// Which page this frame caches.
    pub page_id: PageId,
    /// Page content.
    pub data: RwLock<PageBuf>,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

impl Frame {
    /// Mark the frame dirty (caller mutated `data`).
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    /// Whether the frame holds unwritten changes.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }
}

/// Cumulative buffer pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from DRAM.
    pub hits: u64,
    /// Lookups that had to read the disk.
    pub misses: u64,
    /// Dirty pages written back due to eviction.
    pub evict_writebacks: u64,
    /// Dirty pages written back by explicit flushes.
    pub flush_writebacks: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Arc<Frame>>,
    tick: u64,
}

/// What the pool may do with dirty pages under memory pressure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// "Steal": dirty victims are written back and evicted (classic ARIES
    /// setting, requires redo/undo logging for crash consistency).
    Steal,
    /// "No-steal": only clean frames are evicted; dirty pages reach disk
    /// exclusively through explicit flushes (checkpoints). This is what the
    /// deterministic-replay recovery of OE chains requires: after a crash
    /// the disk holds *exactly* the last checkpoint state.
    #[default]
    NoSteal,
}

/// An LRU buffer pool over a disk backend.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    disk: Arc<dyn DiskBackend>,
    capacity: usize,
    cost: StorageCost,
    policy: EvictionPolicy,
    hits: AtomicU64,
    misses: AtomicU64,
    evict_writebacks: AtomicU64,
    flush_writebacks: AtomicU64,
}

impl BufferPool {
    /// Create a pool caching at most `capacity` pages of `disk`, with the
    /// default [`EvictionPolicy::NoSteal`] policy.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(disk: Arc<dyn DiskBackend>, capacity: usize, cost: StorageCost) -> BufferPool {
        BufferPool::with_policy(disk, capacity, cost, EvictionPolicy::NoSteal)
    }

    /// Create a pool with an explicit eviction policy.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_policy(
        disk: Arc<dyn DiskBackend>,
        capacity: usize,
        cost: StorageCost,
        policy: EvictionPolicy,
    ) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(PoolInner {
                frames: HashMap::with_capacity(capacity),
                tick: 0,
            }),
            disk,
            capacity,
            cost,
            policy,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evict_writebacks: AtomicU64::new(0),
            flush_writebacks: AtomicU64::new(0),
        }
    }

    /// The underlying disk backend.
    #[must_use]
    pub fn disk(&self) -> &Arc<dyn DiskBackend> {
        &self.disk
    }

    /// Allocate a fresh page and return its zeroed frame (counted as a hit:
    /// no disk read is needed for a brand-new page).
    pub fn allocate(&self) -> Result<(PageId, Arc<Frame>)> {
        let id = self.disk.allocate();
        let frame = Arc::new(Frame {
            page_id: id,
            data: RwLock::new(PageBuf::zeroed()),
            dirty: AtomicBool::new(true),
            last_used: AtomicU64::new(0),
        });
        let mut inner = self.inner.lock();
        inner.tick += 1;
        frame.last_used.store(inner.tick, Ordering::Relaxed);
        self.evict_if_full(&mut inner)?;
        inner.frames.insert(id, Arc::clone(&frame));
        Ok((id, frame))
    }

    /// Fetch page `id`, reading it from disk on a miss. The returned frame
    /// is pinned for as long as the `Arc` lives.
    pub fn fetch(&self, id: PageId) -> Result<Arc<Frame>> {
        // Fast path: hit.
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(f) = inner.frames.get(&id) {
                f.last_used.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                vtime::charge(self.cost.buffer_hit_ns);
                return Ok(Arc::clone(f));
            }
        }
        // Miss: read outside the pool lock, then insert (another thread may
        // have raced us; prefer the existing frame in that case).
        self.misses.fetch_add(1, Ordering::Relaxed);
        vtime::charge(self.cost.buffer_miss_cpu_ns);
        let mut buf = PageBuf::zeroed();
        self.disk.read_page(id, &mut buf)?;
        let frame = Arc::new(Frame {
            page_id: id,
            data: RwLock::new(buf),
            dirty: AtomicBool::new(false),
            last_used: AtomicU64::new(0),
        });
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.frames.get(&id) {
            existing.last_used.store(tick, Ordering::Relaxed);
            return Ok(Arc::clone(existing));
        }
        frame.last_used.store(tick, Ordering::Relaxed);
        self.evict_if_full(&mut inner)?;
        inner.frames.insert(id, Arc::clone(&frame));
        Ok(frame)
    }

    /// Evict the least-recently-used unpinned frame if the pool is full,
    /// writing it back first when dirty. Called with the pool lock held.
    fn evict_if_full(&self, inner: &mut PoolInner) -> Result<()> {
        while inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .values()
                // strong_count == 1 means only the pool references it.
                .filter(|f| Arc::strong_count(f) == 1)
                .filter(|f| self.policy == EvictionPolicy::Steal || !f.is_dirty())
                .min_by_key(|f| f.last_used.load(Ordering::Relaxed))
                .map(|f| f.page_id);
            let Some(victim) = victim else {
                // No eligible victim (all pinned, or all dirty under
                // no-steal); allow temporary overflow rather than failing.
                // The pool shrinks again after the next flush.
                return Ok(());
            };
            let frame = inner.frames.remove(&victim).expect("victim present");
            if frame.is_dirty() {
                self.evict_writebacks.fetch_add(1, Ordering::Relaxed);
                let data = frame.data.read();
                self.disk.write_page(victim, &data)?;
                frame.dirty.store(false, Ordering::Release);
            }
        }
        Ok(())
    }

    /// Write back every dirty frame (checkpoint path). Frames stay cached.
    pub fn flush_all(&self) -> Result<()> {
        let frames: Vec<Arc<Frame>> = {
            let inner = self.inner.lock();
            inner.frames.values().cloned().collect()
        };
        for f in frames {
            if f.is_dirty() {
                self.flush_writebacks.fetch_add(1, Ordering::Relaxed);
                let data = f.data.read();
                self.disk.write_page(f.page_id, &data)?;
                f.dirty.store(false, Ordering::Release);
            }
        }
        self.disk.sync()?;
        Ok(())
    }

    /// Drop every cached frame (used by recovery tests to simulate a cold
    /// cache). Dirty frames are *discarded*, modelling a crash.
    pub fn clear_cache_discarding_dirty(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
    }

    /// Current number of cached frames.
    #[must_use]
    pub fn cached_frames(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Snapshot of hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evict_writebacks: self.evict_writebacks.load(Ordering::Relaxed),
            flush_writebacks: self.flush_writebacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemDisk::new()), capacity, StorageCost::free())
    }

    #[test]
    fn allocate_and_fetch_hit() {
        let p = pool(4);
        let (id, f) = p.allocate().unwrap();
        f.data.write().bytes_mut()[0] = 0x11;
        f.mark_dirty();
        drop(f);
        let f2 = p.fetch(id).unwrap();
        assert_eq!(f2.data.read().bytes()[0], 0x11);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 0);
    }

    #[test]
    fn steal_eviction_writes_back_dirty() {
        let p = BufferPool::with_policy(
            Arc::new(MemDisk::new()),
            2,
            StorageCost::free(),
            EvictionPolicy::Steal,
        );
        let mut ids = Vec::new();
        for i in 0..4u8 {
            let (id, f) = p.allocate().unwrap();
            f.data.write().bytes_mut()[0] = i;
            f.mark_dirty();
            ids.push(id);
        }
        // Capacity 2 < 4 allocations => evictions happened with write-back.
        assert!(p.stats().evict_writebacks >= 2);
        // Evicted pages are still readable (from disk) with correct content.
        for (i, id) in ids.iter().enumerate() {
            let f = p.fetch(*id).unwrap();
            assert_eq!(f.data.read().bytes()[0], i as u8, "page {id:?}");
        }
    }

    #[test]
    fn no_steal_never_writes_dirty_on_eviction() {
        let p = pool(2); // default policy = NoSteal
        for i in 0..6u8 {
            let (_, f) = p.allocate().unwrap();
            f.data.write().bytes_mut()[0] = i;
            f.mark_dirty();
        }
        // Dirty frames may overflow the capacity but never hit the disk.
        assert_eq!(p.stats().evict_writebacks, 0);
        assert_eq!(p.disk().io_counts().1, 0, "no page writes before flush");
        assert!(p.cached_frames() >= 6);
        // After a flush the frames become clean and evictable again.
        p.flush_all().unwrap();
        let (_, f) = p.allocate().unwrap();
        f.mark_dirty();
        drop(f);
        assert!(p.cached_frames() <= 7);
    }

    #[test]
    fn pinned_frames_survive_eviction() {
        let p = pool(2);
        let (id0, f0) = p.allocate().unwrap();
        f0.data.write().bytes_mut()[0] = 0xAB;
        f0.mark_dirty();
        // Keep f0 pinned while allocating more than capacity.
        for _ in 0..5 {
            let (_, f) = p.allocate().unwrap();
            f.mark_dirty();
        }
        // f0 still valid and content intact.
        assert_eq!(f0.data.read().bytes()[0], 0xAB);
        let again = p.fetch(id0).unwrap();
        assert!(Arc::ptr_eq(&f0, &again), "pinned frame must not be evicted");
    }

    #[test]
    fn flush_all_clears_dirty() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.data.write().bytes_mut()[0] = 9;
        f.mark_dirty();
        drop(f);
        p.flush_all().unwrap();
        let f = p.fetch(id).unwrap();
        assert!(!f.is_dirty());
        // Disk now holds the content even if the cache is dropped.
        drop(f);
        p.clear_cache_discarding_dirty();
        let f = p.fetch(id).unwrap();
        assert_eq!(f.data.read().bytes()[0], 9);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn crash_discards_unflushed_writes() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.data.write().bytes_mut()[0] = 1;
        f.mark_dirty();
        drop(f);
        p.flush_all().unwrap();
        // Dirty again, then "crash".
        let f = p.fetch(id).unwrap();
        f.data.write().bytes_mut()[0] = 2;
        f.mark_dirty();
        drop(f);
        p.clear_cache_discarding_dirty();
        let f = p.fetch(id).unwrap();
        assert_eq!(f.data.read().bytes()[0], 1, "post-crash state = last flush");
    }

    #[test]
    fn hit_miss_costs_charged() {
        let disk = Arc::new(MemDisk::new());
        let cost = StorageCost::default();
        let p = BufferPool::new(disk, 2, cost);
        let (id, f) = p.allocate().unwrap();
        f.mark_dirty();
        drop(f);
        vtime::take();
        let _f = p.fetch(id).unwrap();
        assert_eq!(vtime::take(), cost.buffer_hit_ns);
    }

    #[test]
    fn concurrent_fetches_are_safe() {
        let p = Arc::new(pool(16));
        let (id, f) = p.allocate().unwrap();
        f.mark_dirty();
        drop(f);
        let mut handles = Vec::new();
        for t in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let f = p.fetch(id).unwrap();
                    let mut g = f.data.write();
                    g.bytes_mut()[t] = g.bytes()[t].wrapping_add(1);
                    f.mark_dirty();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let f = p.fetch(id).unwrap();
        let g = f.data.read();
        for t in 0..8 {
            assert_eq!(g.bytes()[t], 200u8.wrapping_mul(1), "slot {t}");
        }
    }
}
