//! Kafka-style crash-fault-tolerant ordering service — HarmonyBC's default
//! consensus layer (§4), mirroring Fabric's Kafka orderer.
//!
//! A leader broker batches transactions, replicates each batch to its
//! followers, commits on majority ack, and delivers the sealed block to
//! every chain replica. Pipelined with a bounded in-flight window.

use std::collections::HashMap;

use harmony_crypto::Digest;

use crate::net::{ConsensusReport, DeliveryLog, EventLoop, LatencyModel, SimNode, Transport};

/// Kafka orderer configuration.
#[derive(Clone, Debug)]
pub struct KafkaConfig {
    /// Replication factor (leader + followers).
    pub brokers: usize,
    /// Chain replicas receiving sealed blocks.
    pub replicas: usize,
    /// Transactions per block.
    pub block_txns: u64,
    /// Serialized transaction size in bytes.
    pub txn_bytes: u64,
    /// Per-byte NIC serialization cost charged to the sender (ns/B).
    pub tx_ns_per_byte: u64,
    /// Max batches in flight (pipelining window).
    pub window: usize,
    /// Network model.
    pub latency: LatencyModel,
}

impl Default for KafkaConfig {
    fn default() -> Self {
        KafkaConfig {
            brokers: 3,
            replicas: 4,
            block_txns: 250,
            txn_bytes: 128,
            tx_ns_per_byte: 1,
            window: 4,
            latency: LatencyModel::lan_1g(),
        }
    }
}

impl KafkaConfig {
    fn block_bytes(&self) -> u64 {
        self.block_txns * self.txn_bytes + 128
    }
    fn majority(&self) -> usize {
        self.brokers / 2 + 1
    }
}

/// Messages in the ordering cluster.
#[derive(Clone, Debug)]
pub enum KMsg {
    /// Leader → follower: replicate batch `seq`.
    Replicate {
        /// Batch sequence number.
        seq: u64,
        /// Batch creation time.
        born_at: u64,
    },
    /// Follower → leader ack.
    Ack {
        /// Batch sequence number.
        seq: u64,
        /// Batch creation time.
        born_at: u64,
    },
    /// Leader → chain replica: sealed block (sequence + content digest).
    Deliver {
        /// Batch sequence number.
        seq: u64,
        /// Digest of the sealed block's contents.
        digest: Digest,
    },
}

/// Broker / replica node. Node 0 is the leader; nodes `1..brokers` are
/// follower brokers; the rest are chain replicas.
pub struct KNode {
    id: usize,
    config: KafkaConfig,
    acks: HashMap<u64, usize>,
    next_seq: u64,
    in_flight: usize,
    /// Committed batches at the leader: (seq, latency ns).
    pub committed: Vec<(u64, u64)>,
    /// Verified delivery log of this chain replica: every sealed block it
    /// received, in order, with its content digest. Replicas fed the same
    /// ordering must hold identical logs.
    pub delivery_log: DeliveryLog,
}

/// Content digest of the leader's synthetic batch `seq` — what the sealed
/// block's hash would be. Replicas recompute it to verify deliveries.
#[must_use]
pub fn batch_digest(seq: u64) -> Digest {
    let mut bytes = *b"kafka-batch-\0\0\0\0\0\0\0\0";
    bytes[12..20].copy_from_slice(&seq.to_le_bytes());
    harmony_crypto::sha256(&bytes)
}

impl KNode {
    fn new(id: usize, config: KafkaConfig) -> KNode {
        KNode {
            id,
            config,
            acks: HashMap::new(),
            next_seq: 0,
            in_flight: 0,
            committed: Vec::new(),
            delivery_log: DeliveryLog::default(),
        }
    }

    fn launch_batch(&mut self, ctx: &mut dyn Transport<KMsg>) {
        let bytes = self.config.block_bytes();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight += 1;
        self.acks.insert(seq, 1); // the leader's own log append
        for follower in 1..self.config.brokers {
            ctx.charge_cpu(bytes * self.config.tx_ns_per_byte);
            ctx.send(
                follower,
                KMsg::Replicate {
                    seq,
                    born_at: ctx.now(),
                },
                bytes,
            );
        }
    }
}

impl SimNode<KMsg> for KNode {
    fn on_message(&mut self, from: usize, msg: KMsg, ctx: &mut dyn Transport<KMsg>) {
        let _ = from;
        match msg {
            KMsg::Replicate { seq, born_at } => {
                // Follower appends to its log (disk write cost folded into
                // CPU) and acks.
                ctx.charge_cpu(50_000);
                ctx.send(0, KMsg::Ack { seq, born_at }, 64);
            }
            KMsg::Ack { seq, born_at } => {
                let acks = self.acks.entry(seq).or_insert(0);
                *acks += 1;
                if *acks == self.config.majority() {
                    self.committed
                        .push((seq, ctx.now().saturating_sub(born_at)));
                    // Deliver the sealed block to every chain replica.
                    let bytes = self.config.block_bytes();
                    let digest = batch_digest(seq);
                    for r in 0..self.config.replicas {
                        let node = self.config.brokers + r;
                        ctx.charge_cpu(bytes * self.config.tx_ns_per_byte);
                        ctx.send(node, KMsg::Deliver { seq, digest }, bytes);
                    }
                    self.in_flight -= 1;
                    while self.in_flight < self.config.window {
                        self.launch_batch(ctx);
                    }
                }
            }
            KMsg::Deliver { seq, digest } => {
                // Verify the delivered block against the recomputable
                // content digest before admitting it to the log.
                debug_assert_eq!(digest, batch_digest(seq), "tampered delivery");
                self.delivery_log.observe(seq, digest);
            }
        }
    }

    fn on_timer(&mut self, _id: u64, ctx: &mut dyn Transport<KMsg>) {
        if self.id == 0 && self.next_seq == 0 {
            while self.in_flight < self.config.window {
                self.launch_batch(ctx);
            }
        }
    }
}

/// Harness running a saturated Kafka ordering cluster.
pub struct KafkaSim {
    config: KafkaConfig,
}

impl KafkaSim {
    /// Build the harness.
    #[must_use]
    pub fn new(config: KafkaConfig) -> KafkaSim {
        KafkaSim { config }
    }

    /// Run for `duration_ns` of simulated time.
    #[must_use]
    pub fn run(&self, duration_ns: u64) -> ConsensusReport {
        let total = self.config.brokers + self.config.replicas;
        let nodes: Vec<KNode> = (0..total)
            .map(|i| KNode::new(i, self.config.clone()))
            .collect();
        let mut el = EventLoop::new(nodes, self.config.latency.clone(), 0xCAFE);
        el.seed_timer(0, 0, 0);
        el.run_until(duration_ns);
        let committed = &el.node(0).committed;
        let blocks = committed.len() as u64;
        let mean_latency_ns = if committed.is_empty() {
            0.0
        } else {
            committed.iter().map(|(_, l)| *l as f64).sum::<f64>() / committed.len() as f64
        };
        ConsensusReport {
            throughput_tps: blocks as f64 * self.config.block_txns as f64
                / (duration_ns as f64 / 1e9),
            latency_ms: mean_latency_ns / 1e6,
            committed_blocks: blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(replicas: usize, latency: LatencyModel) -> ConsensusReport {
        KafkaSim::new(KafkaConfig {
            replicas,
            latency,
            ..KafkaConfig::default()
        })
        .run(3_000_000_000)
    }

    #[test]
    fn makes_progress_and_saturates() {
        let report = run(4, LatencyModel::lan_1g());
        assert!(report.committed_blocks > 500, "{report:?}");
        assert!(report.throughput_tps > 50_000.0, "{report:?}");
    }

    #[test]
    fn kafka_latency_below_hotstuff() {
        use crate::hotstuff::{HotStuffConfig, HotStuffSim};
        let kafka = run(4, LatencyModel::lan_1g());
        let hs = HotStuffSim::new(HotStuffConfig {
            nodes: 4,
            ..HotStuffConfig::default()
        })
        .run(3_000_000_000);
        assert!(
            kafka.latency_ms < hs.latency_ms,
            "CFT ordering needs fewer round trips: kafka={kafka:?} hs={hs:?}"
        );
    }

    #[test]
    fn fanout_to_more_replicas_reduces_throughput() {
        let small = run(4, LatencyModel::lan_1g());
        let big = run(80, LatencyModel::lan_1g());
        assert!(
            big.throughput_tps < small.throughput_tps,
            "delivery fan-out costs leader bandwidth: small={small:?} big={big:?}"
        );
        // But it stays far above the disk DB layer (~3–12 K tps).
        assert!(big.throughput_tps > 20_000.0, "{big:?}");
    }

    #[test]
    fn replicas_observe_identical_delivery_sequences() {
        let config = KafkaConfig {
            replicas: 3,
            ..KafkaConfig::default()
        };
        let total = config.brokers + config.replicas;
        let nodes: Vec<KNode> = (0..total).map(|i| KNode::new(i, config.clone())).collect();
        let mut el = EventLoop::new(nodes, LatencyModel::lan_1g(), 1);
        el.seed_timer(0, 0, 0);
        el.run_until(1_000_000_000);
        let reference = &el.node(config.brokers).delivery_log;
        assert!(reference.len() > 100, "{}", reference.len());
        for r in 0..3 {
            let log = &el.node(config.brokers + r).delivery_log;
            assert!(log.is_gap_free(), "replica {r} has delivery gaps");
            assert_eq!(log.mismatches(), 0);
            // Identical sequences, modulo the last delivery that may still
            // be in flight to some replicas at the simulation cutoff.
            assert!(
                log.agrees_with(reference)
                    && (log.len() as i64 - reference.len() as i64).abs() <= 1,
                "replica {r} diverged: {} vs {} entries",
                log.len(),
                reference.len()
            );
            assert_eq!(log.digest_at(0), Some(batch_digest(0)));
        }
    }

    #[test]
    fn deterministic() {
        let a = run(8, LatencyModel::lan_5g());
        let b = run(8, LatencyModel::lan_5g());
        assert_eq!(a.committed_blocks, b.committed_blocks);
    }
}
