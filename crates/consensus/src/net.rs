//! Deterministic discrete-event network simulation.
//!
//! Nodes exchange messages through a latency model (base one-way latency +
//! serialization time per byte + deterministic jitter); each node is a
//! single-core state machine whose handlers report CPU cost, so crypto
//! work throttles throughput exactly like the paper's observation that
//! HotStuff's crypto overhead caps its rate.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use harmony_crypto::Digest;
use harmony_metrics::Counter;

/// Verified per-replica record of delivered blocks: sequence number →
/// content digest, with duplicate-divergence tracking. Replicas fed the
/// same ordering service must end up with identical logs — the assertion
/// the consensus tests and the node runtime's divergence detection share.
#[derive(Clone, Debug, Default)]
pub struct DeliveryLog {
    entries: BTreeMap<u64, Digest>,
    mismatches: u64,
}

impl DeliveryLog {
    /// Record a delivery. A repeat of an already-logged sequence with a
    /// *different* digest is counted as a mismatch (equivocation evidence);
    /// identical repeats are idempotent.
    pub fn observe(&mut self, seq: u64, digest: Digest) {
        match self.entries.get(&seq) {
            Some(prev) if *prev != digest => self.mismatches += 1,
            Some(_) => {}
            None => {
                self.entries.insert(seq, digest);
            }
        }
    }

    /// Number of distinct sequences delivered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been delivered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Digest logged for `seq`, if delivered.
    #[must_use]
    pub fn digest_at(&self, seq: u64) -> Option<Digest> {
        self.entries.get(&seq).copied()
    }

    /// Conflicting re-deliveries observed (must be 0 for honest orderers).
    #[must_use]
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Whether the logged sequences form one contiguous range (no gaps).
    #[must_use]
    pub fn is_gap_free(&self) -> bool {
        match (self.entries.keys().next(), self.entries.keys().last()) {
            (Some(first), Some(last)) => last - first + 1 == self.entries.len() as u64,
            _ => true,
        }
    }

    /// Whether every sequence both logs contain carries the same digest —
    /// the pairwise replica-consistency check.
    #[must_use]
    pub fn agrees_with(&self, other: &DeliveryLog) -> bool {
        self.entries
            .iter()
            .all(|(seq, d)| other.entries.get(seq).is_none_or(|o| o == d))
    }

    /// The log's `(seq, digest)` entries in sequence order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, Digest)> + '_ {
        self.entries.iter().map(|(s, d)| (*s, *d))
    }
}

/// Placement region of a node (the paper's 4-continent WAN).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// us-east-2.
    Ohio,
    /// ap-south-1.
    Mumbai,
    /// ap-southeast-2.
    Sydney,
    /// eu-north-1.
    Stockholm,
}

/// Approximate one-way latencies between regions, in nanoseconds.
fn region_latency_ns(a: Region, b: Region) -> u64 {
    use Region::*;
    let ms = |x: u64| x * 1_000_000;
    match (a, b) {
        (x, y) if x == y => ms(1),
        (Ohio, Mumbai) | (Mumbai, Ohio) => ms(100),
        (Ohio, Sydney) | (Sydney, Ohio) => ms(90),
        (Ohio, Stockholm) | (Stockholm, Ohio) => ms(50),
        (Mumbai, Sydney) | (Sydney, Mumbai) => ms(110),
        (Mumbai, Stockholm) | (Stockholm, Mumbai) => ms(70),
        _ => ms(140), // Sydney ↔ Stockholm
    }
}

/// A link latency model.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Uniform LAN: fixed one-way latency + bandwidth term.
    Lan {
        /// One-way latency in ns.
        latency_ns: u64,
        /// Serialization cost per byte in ns (1 Gbps ≈ 8 ns/B).
        ns_per_byte: u64,
    },
    /// Geo-distributed: nodes assigned round-robin to the given regions.
    Wan {
        /// Region assignment per node index (cycled).
        regions: Vec<Region>,
        /// Serialization cost per byte in ns.
        ns_per_byte: u64,
    },
}

impl LatencyModel {
    /// The paper's default-cluster LAN (1 Gbps Ethernet, ~0.25 ms).
    #[must_use]
    pub fn lan_1g() -> LatencyModel {
        LatencyModel::Lan {
            latency_ns: 250_000,
            ns_per_byte: 8,
        }
    }

    /// The cloud cluster LAN (5 Gbps, ~0.1 ms).
    #[must_use]
    pub fn lan_5g() -> LatencyModel {
        LatencyModel::Lan {
            latency_ns: 100_000,
            ns_per_byte: 2,
        }
    }

    /// The paper's 4-continent WAN.
    #[must_use]
    pub fn wan_4_continents() -> LatencyModel {
        LatencyModel::Wan {
            regions: vec![
                Region::Ohio,
                Region::Mumbai,
                Region::Sydney,
                Region::Stockholm,
            ],
            ns_per_byte: 2,
        }
    }

    /// One-way delay for a `bytes`-sized message from node `a` to `b`.
    #[must_use]
    pub fn delay_ns(&self, a: usize, b: usize, bytes: u64) -> u64 {
        match self {
            LatencyModel::Lan {
                latency_ns,
                ns_per_byte,
            } => latency_ns + bytes * ns_per_byte,
            LatencyModel::Wan {
                regions,
                ns_per_byte,
            } => {
                let ra = regions[a % regions.len()];
                let rb = regions[b % regions.len()];
                region_latency_ns(ra, rb) + bytes * ns_per_byte
            }
        }
    }
}

/// An event scheduled for a node.
#[derive(Debug)]
struct Pending<M> {
    at: u64,
    seq: u64, // tie-breaker for determinism
    to: usize,
    kind: EventKind<M>,
}

#[derive(Debug)]
enum EventKind<M> {
    Message { from: usize, msg: M },
    Timer { id: u64 },
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Network jitter as a pure function of (seed, sender, sender's send
/// index) — splitmix64-style mixing. Keeping jitter *per-sender* rather
/// than drawing from one shared stream isolates faults: a crashed or
/// syncing node sending more (or fewer) messages cannot perturb the
/// delivery times of unrelated links, so a crash/rejoin scenario leaves
/// the rest of the cluster's schedule — and hence the sealed block
/// stream — bit-identical to a no-crash run. The determinism test
/// battery pins exactly that equivalence.
fn link_jitter_ns(seed: u64, sender: usize, count: u64) -> u64 {
    let mut x = seed
        ^ (sender as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ count.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % 50_000 // ≤50 µs
}

/// Per-mille fate roll for fault injection: a pure function of (seed,
/// sender, the sender's send index, and the fault's position in the
/// table). Like [`link_jitter_ns`], the roll depends only on *per-sender*
/// state, so whether one link's fault fires can never perturb the fate or
/// timing of traffic between unrelated nodes — and a run whose fault
/// table is empty is bit-identical to a run on a fault-free network.
fn fault_roll(seed: u64, sender: usize, count: u64, fault_idx: u64) -> u64 {
    let mut x = seed
        ^ 0xC2B2_AE3D_27D4_EB4F
        ^ (sender as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ count.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ fault_idx.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % 1000
}

/// What a matching [`LinkFault`] does to a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEffect {
    /// Drop the message with probability `per_mille`/1000 (1000 = always).
    Drop {
        /// Drop probability in per-mille (0..=1000).
        per_mille: u16,
    },
    /// Deliver the message *and*, with probability `per_mille`/1000, a
    /// duplicate copy `echo_delay_ns` later — the classic at-least-once
    /// network that exercises idempotent delivery paths.
    Duplicate {
        /// Duplication probability in per-mille (0..=1000).
        per_mille: u16,
        /// Extra delay of the duplicate copy relative to the original.
        echo_delay_ns: u64,
    },
    /// Add `extra_ns` of one-way delay (a congestion spike).
    Delay {
        /// Extra one-way delay in nanoseconds.
        extra_ns: u64,
    },
}

/// Which traffic a [`LinkFault`] applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultScope {
    /// Every message sent *or* received by this node (a partitioned /
    /// flaky host).
    Node(usize),
    /// Only messages flowing `from → to` (one direction of one link).
    Directed {
        /// Sending node index.
        from: usize,
        /// Receiving node index.
        to: usize,
    },
}

impl FaultScope {
    fn matches(self, from: usize, to: usize) -> bool {
        match self {
            FaultScope::Node(n) => from == n || to == n,
            FaultScope::Directed { from: f, to: t } => from == f && to == t,
        }
    }
}

/// One scheduled network fault: an effect applied to matching traffic
/// during `[from_ns, until_ns)` of virtual time.
#[derive(Clone, Copy, Debug)]
pub struct LinkFault {
    /// Window start (inclusive), virtual ns.
    pub from_ns: u64,
    /// Window end (exclusive), virtual ns.
    pub until_ns: u64,
    /// Traffic the fault applies to.
    pub scope: FaultScope,
    /// What happens to matching messages.
    pub effect: FaultEffect,
}

impl LinkFault {
    fn active(&self, now: u64, from: usize, to: usize) -> bool {
        now >= self.from_ns && now < self.until_ns && self.scope.matches(from, to)
    }
}

/// The fault table an [`EventLoop`] consults on every send, plus live
/// counters of what it injected. An empty table (the default) leaves the
/// network bit-identical to the pre-fault-plane model; the counters are
/// detached unless a harness wires registered ones in via
/// [`NetFaults::set_counters`].
#[derive(Clone, Debug, Default)]
pub struct NetFaults {
    faults: Vec<LinkFault>,
    /// Messages dropped by `Drop` faults.
    pub dropped: Counter,
    /// Duplicate copies injected by `Duplicate` faults.
    pub duplicated: Counter,
    /// Messages delayed by `Delay` faults.
    pub delayed: Counter,
}

impl NetFaults {
    /// A fault table over the given fault list (detached counters).
    #[must_use]
    pub fn new(faults: Vec<LinkFault>) -> NetFaults {
        NetFaults {
            faults,
            ..NetFaults::default()
        }
    }

    /// Add one fault to the table.
    pub fn push(&mut self, fault: LinkFault) {
        self.faults.push(fault);
    }

    /// Whether the table has no faults (the fast path: zero per-send cost).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Replace the injection counters with registered handles so fault
    /// activity shows up in an exposition / timeline.
    pub fn set_counters(&mut self, dropped: Counter, duplicated: Counter, delayed: Counter) {
        self.dropped = dropped;
        self.duplicated = duplicated;
        self.delayed = delayed;
    }

    /// Decide the fate of one message: `None` to drop it, otherwise the
    /// (possibly delayed) arrival time plus an optional duplicate-copy
    /// arrival time. Pure in (seed, sender, send index) — see
    /// [`fault_roll`].
    fn fate(
        &self,
        now: u64,
        from: usize,
        to: usize,
        at: u64,
        seed: u64,
        send_count: u64,
    ) -> Option<(u64, Option<u64>)> {
        let mut arrive = at;
        let mut echo = None;
        for (idx, f) in self.faults.iter().enumerate() {
            if !f.active(now, from, to) {
                continue;
            }
            match f.effect {
                FaultEffect::Drop { per_mille } => {
                    if fault_roll(seed, from, send_count, idx as u64) < u64::from(per_mille) {
                        self.dropped.inc();
                        return None;
                    }
                }
                FaultEffect::Duplicate {
                    per_mille,
                    echo_delay_ns,
                } => {
                    if fault_roll(seed, from, send_count, idx as u64) < u64::from(per_mille) {
                        self.duplicated.inc();
                        echo = Some(arrive + echo_delay_ns);
                    }
                }
                FaultEffect::Delay { extra_ns } => {
                    self.delayed.inc();
                    arrive += extra_ns;
                }
            }
        }
        // A Delay fault also shifts any duplicate rolled before it; keep
        // the echo no earlier than the original.
        Some((arrive, echo.map(|e| e.max(arrive))))
    }
}

/// Handle the event loop hands to node logic for sending/scheduling.
pub struct NetCtx<'a, M> {
    now: u64,
    node: usize,
    latency: &'a LatencyModel,
    faults: &'a NetFaults,
    out: Vec<(u64, usize, EventKind<M>)>,
    jitter_seed: u64,
    send_count: &'a mut u64,
    /// CPU nanoseconds the handler consumed (extends the node's busy time).
    pub cpu_ns: u64,
}

impl<M> NetCtx<'_, M> {
    /// Current simulated time (ns).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This node's index.
    #[must_use]
    pub fn me(&self) -> usize {
        self.node
    }

    /// Send `msg` of `bytes` size to node `to`.
    ///
    /// The send *always* advances this sender's send counter — even when
    /// an active [`NetFaults`] entry swallows the message — so the jitter
    /// stream of every other message stays exactly where it would be on a
    /// healthy network.
    pub fn send(&mut self, to: usize, msg: M, bytes: u64)
    where
        M: Clone,
    {
        *self.send_count += 1;
        let jitter = link_jitter_ns(self.jitter_seed, self.node, *self.send_count);
        let at = self.now + self.latency.delay_ns(self.node, to, bytes) + jitter;
        let (at, echo) = if self.faults.is_empty() {
            (at, None)
        } else {
            match self.faults.fate(
                self.now,
                self.node,
                to,
                at,
                self.jitter_seed,
                *self.send_count,
            ) {
                None => return, // dropped on the wire
                Some(fate) => fate,
            }
        };
        if let Some(echo_at) = echo {
            self.out.push((
                echo_at,
                to,
                EventKind::Message {
                    from: self.node,
                    msg: msg.clone(),
                },
            ));
        }
        self.out.push((
            at,
            to,
            EventKind::Message {
                from: self.node,
                msg,
            },
        ));
    }

    /// Schedule a timer on this node after `delay_ns`.
    pub fn set_timer(&mut self, delay_ns: u64, id: u64) {
        self.out
            .push((self.now + delay_ns, self.node, EventKind::Timer { id }));
    }

    /// Charge CPU time to this node (serializes its event processing).
    pub fn charge_cpu(&mut self, ns: u64) {
        self.cpu_ns += ns;
    }
}

/// The transport seam: everything node logic may ask of the network.
///
/// Two implementations exist: [`NetCtx`] — the deterministic
/// discrete-event simulator, where "time" is virtual nanoseconds and a
/// send is a scheduled future event — and `harmony-transport`'s TCP
/// context, where "time" is the wall clock and a send is a frame on a
/// per-peer socket queue. Node logic ([`SimNode`] implementations) is
/// written once against this trait and runs unchanged on either, which is
/// what lets a cluster of OS processes execute the *identical*
/// replica/ordering/state-sync code path the simulator pins
/// bit-reproducibly.
pub trait Transport<M> {
    /// Current time in nanoseconds (virtual in the simulator, wall-clock
    /// since the process epoch on a real transport).
    fn now(&self) -> u64;
    /// This node's index in the cluster layout.
    fn me(&self) -> usize;
    /// Send `msg` of modeled size `bytes` to node `to`.
    fn send(&mut self, to: usize, msg: M, bytes: u64);
    /// Schedule a timer on this node after `delay_ns`.
    fn set_timer(&mut self, delay_ns: u64, id: u64);
    /// Charge CPU time to this node (serializes its event processing in
    /// the simulator; a no-op hint on a real transport, where CPU time
    /// spends itself).
    fn charge_cpu(&mut self, ns: u64);
}

impl<M: Clone> Transport<M> for NetCtx<'_, M> {
    fn now(&self) -> u64 {
        NetCtx::now(self)
    }

    fn me(&self) -> usize {
        NetCtx::me(self)
    }

    fn send(&mut self, to: usize, msg: M, bytes: u64) {
        NetCtx::send(self, to, msg, bytes);
    }

    fn set_timer(&mut self, delay_ns: u64, id: u64) {
        NetCtx::set_timer(self, delay_ns, id);
    }

    fn charge_cpu(&mut self, ns: u64) {
        NetCtx::charge_cpu(self, ns);
    }
}

/// Node behaviour in the simulation (and, via the [`Transport`] seam, on
/// a real network transport).
pub trait SimNode<M> {
    /// Handle a message.
    fn on_message(&mut self, from: usize, msg: M, ctx: &mut dyn Transport<M>);
    /// Handle a timer.
    fn on_timer(&mut self, id: u64, ctx: &mut dyn Transport<M>);
}

/// The event loop.
pub struct EventLoop<M, N: SimNode<M>> {
    nodes: Vec<N>,
    busy_until: Vec<u64>,
    queue: BinaryHeap<Reverse<Pending<M>>>,
    latency: LatencyModel,
    faults: NetFaults,
    now: u64,
    seq: u64,
    jitter_seed: u64,
    send_counts: Vec<u64>,
}

impl<M: Clone, N: SimNode<M>> EventLoop<M, N> {
    /// Build an event loop over `nodes`.
    #[must_use]
    pub fn new(nodes: Vec<N>, latency: LatencyModel, seed: u64) -> EventLoop<M, N> {
        let n = nodes.len();
        EventLoop {
            nodes,
            busy_until: vec![0; n],
            queue: BinaryHeap::new(),
            latency,
            faults: NetFaults::default(),
            now: 0,
            seq: 0,
            jitter_seed: seed,
            send_counts: vec![0; n],
        }
    }

    /// Install a fault table. The default (empty) table leaves every
    /// schedule bit-identical to the pre-fault network model.
    pub fn set_faults(&mut self, faults: NetFaults) {
        self.faults = faults;
    }

    /// The installed fault table (and its injection counters).
    #[must_use]
    pub fn faults(&self) -> &NetFaults {
        &self.faults
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Immutable access to a node.
    #[must_use]
    pub fn node(&self, i: usize) -> &N {
        &self.nodes[i]
    }

    /// Mutable access to a node — for harnesses that inject faults or
    /// drain results between simulation phases.
    #[must_use]
    pub fn node_mut(&mut self, i: usize) -> &mut N {
        &mut self.nodes[i]
    }

    /// Number of nodes in the loop.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the loop has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inject an initial timer for node `to` at absolute time `at`.
    pub fn seed_timer(&mut self, to: usize, at: u64, id: u64) {
        self.seq += 1;
        self.queue.push(Reverse(Pending {
            at,
            seq: self.seq,
            to,
            kind: EventKind::Timer { id },
        }));
    }

    /// Run until simulated time `until` (or queue exhaustion). Returns the
    /// number of events processed.
    pub fn run_until(&mut self, until: u64) -> u64 {
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > until {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            // A node processes events no earlier than its busy horizon.
            let start = ev.at.max(self.busy_until[ev.to]);
            self.now = self.now.max(start);
            let mut ctx = NetCtx {
                now: start,
                node: ev.to,
                latency: &self.latency,
                faults: &self.faults,
                out: Vec::new(),
                jitter_seed: self.jitter_seed,
                send_count: &mut self.send_counts[ev.to],
                cpu_ns: 0,
            };
            match ev.kind {
                EventKind::Message { from, msg } => {
                    self.nodes[ev.to].on_message(from, msg, &mut ctx);
                }
                EventKind::Timer { id } => self.nodes[ev.to].on_timer(id, &mut ctx),
            }
            self.busy_until[ev.to] = start + ctx.cpu_ns;
            let out = std::mem::take(&mut ctx.out);
            for (at, to, kind) in out {
                self.seq += 1;
                self.queue.push(Reverse(Pending {
                    at,
                    seq: self.seq,
                    to,
                    kind,
                }));
            }
            processed += 1;
        }
        self.now = self.now.max(until);
        processed
    }
}

/// Throughput / latency measurements of a consensus run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsensusReport {
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Mean commit latency in milliseconds.
    pub latency_ms: f64,
    /// Blocks committed during the run.
    pub committed_blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        received: Vec<(usize, u32)>,
    }

    impl SimNode<u32> for Echo {
        fn on_message(&mut self, from: usize, msg: u32, ctx: &mut dyn Transport<u32>) {
            self.received.push((from, msg));
            ctx.charge_cpu(1_000);
            if msg < 3 {
                ctx.send(from, msg + 1, 64);
            }
        }
        fn on_timer(&mut self, _id: u64, ctx: &mut dyn Transport<u32>) {
            ctx.send(1, 0, 64);
        }
    }

    fn two_node_loop() -> EventLoop<u32, Echo> {
        let nodes = vec![Echo { received: vec![] }, Echo { received: vec![] }];
        EventLoop::new(nodes, LatencyModel::lan_1g(), 42)
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut el = two_node_loop();
        el.seed_timer(0, 0, 1);
        el.run_until(1_000_000_000);
        // 0 →(0)→ 1 →(1)→ 0 →(2)→ 1 →(3)→ 0: node1 got msgs 0, 2.
        assert_eq!(
            el.node(1).received.iter().map(|r| r.1).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            el.node(0).received.iter().map(|r| r.1).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut el = two_node_loop();
            el.seed_timer(0, 0, 1);
            el.run_until(500_000_000);
            (el.now(), el.node(0).received.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wan_slower_than_lan() {
        let lan = LatencyModel::lan_5g();
        let wan = LatencyModel::wan_4_continents();
        // Node 0 (Ohio) to node 1 (Mumbai) in WAN vs any LAN pair.
        assert!(wan.delay_ns(0, 1, 100) > 50 * lan.delay_ns(0, 1, 100));
        // Same-region WAN nodes are fast.
        assert!(wan.delay_ns(0, 4, 100) < 2_200_000);
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let m = LatencyModel::lan_1g();
        assert!(m.delay_ns(0, 1, 1_000_000) > m.delay_ns(0, 1, 100) + 7_000_000);
    }

    #[test]
    fn empty_fault_table_is_bit_identical_to_no_table() {
        let run = |install: bool| {
            let mut el = two_node_loop();
            if install {
                el.set_faults(NetFaults::default());
            }
            el.seed_timer(0, 0, 1);
            el.run_until(500_000_000);
            (
                el.now(),
                el.node(0).received.clone(),
                el.node(1).received.clone(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn total_drop_window_blocks_the_link() {
        let mut el = two_node_loop();
        el.set_faults(NetFaults::new(vec![LinkFault {
            from_ns: 0,
            until_ns: u64::MAX,
            scope: FaultScope::Directed { from: 0, to: 1 },
            effect: FaultEffect::Drop { per_mille: 1000 },
        }]));
        el.seed_timer(0, 0, 1);
        el.run_until(1_000_000_000);
        assert!(
            el.node(1).received.is_empty(),
            "0→1 traffic must be dropped"
        );
        assert_eq!(el.faults().dropped.get(), 1);
    }

    #[test]
    fn drop_window_boundaries_are_honored() {
        // The ping fires at t=0; a window that opens later must not touch it.
        let mut el = two_node_loop();
        el.set_faults(NetFaults::new(vec![LinkFault {
            from_ns: 400_000_000,
            until_ns: 500_000_000,
            scope: FaultScope::Node(0),
            effect: FaultEffect::Drop { per_mille: 1000 },
        }]));
        el.seed_timer(0, 0, 1);
        el.run_until(1_000_000_000);
        assert_eq!(el.node(1).received.len(), 2, "window inactive at send time");
        assert_eq!(el.faults().dropped.get(), 0);
    }

    #[test]
    fn duplicate_fault_injects_an_echo_copy() {
        let mut el = two_node_loop();
        el.set_faults(NetFaults::new(vec![LinkFault {
            from_ns: 0,
            until_ns: u64::MAX,
            scope: FaultScope::Directed { from: 0, to: 1 },
            effect: FaultEffect::Duplicate {
                per_mille: 1000,
                echo_delay_ns: 1_000_000,
            },
        }]));
        el.seed_timer(0, 0, 1);
        el.run_until(1_000_000_000);
        // Ping-pong: node 1 normally sees msgs [0, 2]; each 0→1 send now
        // arrives twice, and each duplicate re-triggers the reply chain.
        let ones = el.node(1).received.iter().filter(|r| r.1 == 0).count();
        assert!(ones >= 2, "echo copy of msg 0 must arrive");
        assert!(el.faults().duplicated.get() >= 1);
    }

    #[test]
    fn delay_spike_defers_delivery_without_loss() {
        let base = {
            let mut el = two_node_loop();
            el.seed_timer(0, 0, 1);
            el.run_until(1_000_000_000);
            el.node(1).received.clone()
        };
        let mut el = two_node_loop();
        el.set_faults(NetFaults::new(vec![LinkFault {
            from_ns: 0,
            until_ns: u64::MAX,
            scope: FaultScope::Node(1),
            effect: FaultEffect::Delay {
                extra_ns: 7_000_000,
            },
        }]));
        el.seed_timer(0, 0, 1);
        el.run_until(1_000_000_000);
        assert_eq!(el.node(1).received, base, "delay must not lose or reorder");
        assert!(
            el.faults().delayed.get() >= 2,
            "both directions touch node 1"
        );
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let run = || {
            let mut el = two_node_loop();
            el.set_faults(NetFaults::new(vec![LinkFault {
                from_ns: 0,
                until_ns: u64::MAX,
                scope: FaultScope::Directed { from: 0, to: 1 },
                effect: FaultEffect::Drop { per_mille: 500 },
            }]));
            el.seed_timer(0, 0, 1);
            el.run_until(500_000_000);
            (
                el.node(0).received.clone(),
                el.node(1).received.clone(),
                el.faults().dropped.get(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_fate_is_per_sender_pure() {
        // A fault scoped to an unrelated link must not perturb this link's
        // delivery schedule: same receptions, because jitter and fate are
        // pure functions of (seed, sender, send index).
        struct Stamp {
            got: Vec<(u64, u32)>,
        }
        impl SimNode<u32> for Stamp {
            fn on_message(&mut self, _f: usize, m: u32, ctx: &mut dyn Transport<u32>) {
                self.got.push((ctx.now(), m));
                if m < 5 {
                    ctx.send(1, m + 1, 64);
                }
            }
            fn on_timer(&mut self, _id: u64, ctx: &mut dyn Transport<u32>) {
                ctx.send(1, 0, 64);
            }
        }
        let run = |faults: Option<NetFaults>| {
            let nodes = vec![
                Stamp { got: vec![] },
                Stamp { got: vec![] },
                Stamp { got: vec![] },
            ];
            let mut el = EventLoop::new(nodes, LatencyModel::lan_1g(), 99);
            if let Some(f) = faults {
                el.set_faults(f);
            }
            el.seed_timer(0, 0, 1);
            el.run_until(1_000_000_000);
            el.node(1).got.clone()
        };
        let clean = run(None);
        let faulted = run(Some(NetFaults::new(vec![LinkFault {
            from_ns: 0,
            until_ns: u64::MAX,
            scope: FaultScope::Directed { from: 2, to: 0 },
            effect: FaultEffect::Drop { per_mille: 1000 },
        }])));
        assert_eq!(clean, faulted, "unrelated fault must not move deliveries");
    }

    #[test]
    fn cpu_cost_serializes_node() {
        // Two messages arriving at t=x are processed back-to-back, the
        // second delayed by the first's CPU cost.
        struct Busy {
            starts: Vec<u64>,
        }
        impl SimNode<()> for Busy {
            fn on_message(&mut self, _f: usize, _m: (), ctx: &mut dyn Transport<()>) {
                self.starts.push(ctx.now());
                ctx.charge_cpu(5_000_000);
            }
            fn on_timer(&mut self, _id: u64, ctx: &mut dyn Transport<()>) {
                ctx.send(1, (), 10);
                ctx.send(1, (), 10);
            }
        }
        let mut el = EventLoop::new(
            vec![Busy { starts: vec![] }, Busy { starts: vec![] }],
            LatencyModel::Lan {
                latency_ns: 1_000,
                ns_per_byte: 0,
            },
            7,
        );
        el.seed_timer(0, 0, 0);
        el.run_until(100_000_000);
        let starts = &el.node(1).starts;
        assert_eq!(starts.len(), 2);
        assert!(
            starts[1] >= starts[0] + 5_000_000,
            "second event must wait out the CPU busy time: {starts:?}"
        );
    }
}
