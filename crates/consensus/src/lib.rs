//! Consensus layer: the ordering services HarmonyBC plugs in (§4 of the
//! paper) and the machinery to measure their throughput/latency envelopes
//! (Figures 1, 17, 18).
//!
//! * [`net`] — a deterministic discrete-event network simulator with
//!   per-link latency models (LAN, 4-continent WAN) and per-node CPU
//!   accounting (crypto costs consume node time).
//! * [`hotstuff`] — chained (pipelined) HotStuff BFT: rotating leaders,
//!   quorum certificates, the 3-chain commit rule, view changes on
//!   timeout.
//! * [`kafka`] — a crash-fault-tolerant leader-based ordering service in
//!   the style of Fabric's Kafka orderer: batch, replicate to followers,
//!   ack on majority, deliver.

pub mod hotstuff;
pub mod kafka;
pub mod net;

pub use hotstuff::{HotStuffConfig, HotStuffSim};
pub use kafka::{KafkaConfig, KafkaSim};
pub use net::{ConsensusReport, LatencyModel, Region};
