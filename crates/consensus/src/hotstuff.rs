//! Chained (pipelined) HotStuff — the BFT consensus option of HarmonyBC
//! (Yin et al., PODC 2019).
//!
//! One proposal per view, rotating leaders, votes carried to the *next*
//! leader, quorum certificates, and the 3-chain commit rule. Crypto costs
//! (vote signing, share verification) consume node CPU in the event loop,
//! which is what bounds throughput at large `n` — the paper's explanation
//! for the small BFT throughput dip in Figures 17/18. A view-change path
//! (timeouts + new-view quorum) handles faulty leaders.

use std::collections::{HashMap, HashSet};

use harmony_crypto::{CryptoCost, Digest};

use crate::net::{ConsensusReport, DeliveryLog, EventLoop, LatencyModel, SimNode, Transport};

/// HotStuff configuration.
#[derive(Clone, Debug)]
pub struct HotStuffConfig {
    /// Number of consensus nodes (`n = 3f + 1` tolerates `f` faults).
    pub nodes: usize,
    /// Transactions per block.
    pub block_txns: u64,
    /// Serialized transaction size in bytes.
    pub txn_bytes: u64,
    /// Crypto cost model.
    pub crypto: CryptoCost,
    /// Per-byte NIC serialization cost charged to the sender (ns/B).
    pub tx_ns_per_byte: u64,
    /// View timeout (ns) before replicas initiate a view change.
    pub timeout_ns: u64,
    /// Network model.
    pub latency: LatencyModel,
    /// Nodes that silently drop everything (Byzantine-silent).
    pub faulty: HashSet<usize>,
}

impl Default for HotStuffConfig {
    fn default() -> Self {
        HotStuffConfig {
            nodes: 4,
            block_txns: 250,
            txn_bytes: 128,
            crypto: CryptoCost {
                sign_ns: 50_000,
                verify_ns: 130_000,
                hash_ns: 1_000,
            },
            tx_ns_per_byte: 1,
            timeout_ns: 2_000_000_000,
            latency: LatencyModel::lan_1g(),
            faulty: HashSet::new(),
        }
    }
}

impl HotStuffConfig {
    fn quorum(&self) -> usize {
        let f = (self.nodes - 1) / 3;
        self.nodes - f
    }
    fn leader_of(&self, view: u64) -> usize {
        (view % self.nodes as u64) as usize
    }
    fn block_bytes(&self) -> u64 {
        self.block_txns * self.txn_bytes + 256
    }
}

/// Messages exchanged by HotStuff nodes.
#[derive(Clone, Debug)]
pub enum HsMsg {
    /// Leader's proposal for `view`, justified by a QC for `justify`.
    Proposal {
        /// Proposed view.
        view: u64,
        /// View the embedded QC certifies.
        justify: u64,
        /// Proposal creation time (for latency measurement).
        born_at: u64,
    },
    /// A vote on `view`, sent to the *next* leader.
    Vote {
        /// Voted view.
        view: u64,
    },
    /// View-change message carrying the sender's highest QC view.
    NewView {
        /// View being entered.
        view: u64,
        /// Highest QC the sender knows.
        high_qc: u64,
    },
}

const TIMER_PACEMAKER: u64 = 1;

/// A HotStuff node.
pub struct HsNode {
    id: usize,
    config: HotStuffConfig,
    view: u64,
    high_qc: u64,
    votes: HashMap<u64, usize>,
    new_views: HashMap<u64, usize>,
    proposal_born: HashMap<u64, u64>,
    last_event: u64,
    /// Committed blocks: (view, commit latency ns). Recorded only at the
    /// node that formed the committing QC (for latency measurement).
    pub committed: Vec<(u64, u64)>,
    /// Verified delivery log of this node: every view it learned committed
    /// (via its own QC or a successor proposal's justify), with the
    /// block's content digest. Honest nodes' logs must agree pairwise.
    pub delivery_log: DeliveryLog,
}

/// Content digest of the synthetic block proposed in `view`.
#[must_use]
pub fn view_digest(view: u64) -> Digest {
    let mut bytes = *b"hotstuff-blk\0\0\0\0\0\0\0\0";
    bytes[12..20].copy_from_slice(&view.to_le_bytes());
    harmony_crypto::sha256(&bytes)
}

impl HsNode {
    fn new(id: usize, config: HotStuffConfig) -> HsNode {
        HsNode {
            id,
            config,
            view: 0,
            high_qc: 0,
            votes: HashMap::new(),
            new_views: HashMap::new(),
            proposal_born: HashMap::new(),
            last_event: 0,
            committed: Vec::new(),
            delivery_log: DeliveryLog::default(),
        }
    }

    fn is_faulty(&self) -> bool {
        self.config.faulty.contains(&self.id)
    }

    fn propose(&mut self, view: u64, ctx: &mut dyn Transport<HsMsg>) {
        let bytes = self.config.block_bytes();
        self.proposal_born.insert(view, ctx.now());
        // Leader signs the proposal and serializes it to every replica.
        ctx.charge_cpu(self.config.crypto.sign_ns + self.config.crypto.hash_ns);
        for peer in 0..self.config.nodes {
            ctx.charge_cpu(bytes * self.config.tx_ns_per_byte);
            if peer != self.id {
                ctx.send(
                    peer,
                    HsMsg::Proposal {
                        view,
                        justify: view.saturating_sub(1),
                        born_at: ctx.now(),
                    },
                    bytes,
                );
            }
        }
        // Leader votes for its own proposal.
        let next_leader = self.config.leader_of(view + 1);
        if next_leader == self.id {
            self.on_vote(view, ctx);
        } else {
            ctx.send(next_leader, HsMsg::Vote { view }, 128);
        }
    }

    fn on_vote(&mut self, view: u64, ctx: &mut dyn Transport<HsMsg>) {
        // Verify the vote share (threshold-signature share verification).
        ctx.charge_cpu(self.config.crypto.verify_ns / 16);
        let votes = self.votes.entry(view).or_insert(0);
        *votes += 1;
        if *votes == self.config.quorum() {
            // QC formed for `view`; 3-chain commits view − 2.
            self.high_qc = self.high_qc.max(view);
            if view >= 2 {
                let committed_view = view - 2;
                let latency = ctx.now().saturating_sub(
                    self.proposal_born
                        .remove(&committed_view)
                        .unwrap_or(ctx.now()),
                );
                self.committed.push((committed_view, latency));
                self.delivery_log
                    .observe(committed_view, view_digest(committed_view));
            }
            // Pipelined: immediately lead the next view.
            let next = view + 1;
            if self.config.leader_of(next) == self.id {
                self.view = next;
                self.propose(next, ctx);
            }
        }
    }
}

impl SimNode<HsMsg> for HsNode {
    fn on_message(&mut self, _from: usize, msg: HsMsg, ctx: &mut dyn Transport<HsMsg>) {
        if self.is_faulty() {
            return;
        }
        self.last_event = ctx.now();
        match msg {
            HsMsg::Proposal {
                view,
                justify,
                born_at,
            } => {
                if view < self.view {
                    return;
                }
                // The embedded QC certifies `justify`; under the 3-chain
                // rule that commits `justify − 2` at this replica — the
                // delivery every node records, leader or not.
                if justify >= 2 {
                    self.delivery_log
                        .observe(justify - 2, view_digest(justify - 2));
                }
                self.view = view;
                self.proposal_born.entry(view).or_insert(born_at);
                // Verify the proposal's QC + sign a vote.
                ctx.charge_cpu(self.config.crypto.verify_ns + self.config.crypto.sign_ns);
                let next_leader = self.config.leader_of(view + 1);
                if next_leader == self.id {
                    self.on_vote(view, ctx);
                } else {
                    ctx.send(next_leader, HsMsg::Vote { view }, 128);
                }
                // Arm the pacemaker for the next view.
                ctx.set_timer(self.config.timeout_ns, TIMER_PACEMAKER);
            }
            HsMsg::Vote { view } => self.on_vote(view, ctx),
            HsMsg::NewView { view, high_qc } => {
                self.high_qc = self.high_qc.max(high_qc);
                let n = self.new_views.entry(view).or_insert(0);
                *n += 1;
                if *n == self.config.quorum() && self.config.leader_of(view) == self.id {
                    self.view = view;
                    self.propose(view, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut dyn Transport<HsMsg>) {
        if self.is_faulty() {
            return;
        }
        match id {
            0
                // Bootstrap: node 0 proposes view 1.
                if self.id == self.config.leader_of(1) => {
                    self.view = 1;
                    self.propose(1, ctx);
                }
            TIMER_PACEMAKER
                // No progress since the timer was armed? Move to view
                // change.
                if ctx.now().saturating_sub(self.last_event) >= self.config.timeout_ns => {
                    let next = self.view + 1;
                    let leader = self.config.leader_of(next);
                    let msg = HsMsg::NewView {
                        view: next,
                        high_qc: self.high_qc,
                    };
                    if leader == self.id {
                        let me = self.id;
                        let _ = me;
                        self.on_message(self.id, msg, ctx);
                    } else {
                        ctx.send(leader, msg, 160);
                    }
                    self.view = next;
                    ctx.set_timer(self.config.timeout_ns, TIMER_PACEMAKER);
                }
            _ => {}
        }
    }
}

/// Harness running a HotStuff cluster to saturation.
pub struct HotStuffSim {
    config: HotStuffConfig,
}

impl HotStuffSim {
    /// Build the harness.
    #[must_use]
    pub fn new(config: HotStuffConfig) -> HotStuffSim {
        HotStuffSim { config }
    }

    /// Run for `duration_ns` of simulated time and report consensus
    /// throughput/latency (measured at node 0, or the first honest node).
    #[must_use]
    pub fn run(&self, duration_ns: u64) -> ConsensusReport {
        let nodes: Vec<HsNode> = (0..self.config.nodes)
            .map(|i| HsNode::new(i, self.config.clone()))
            .collect();
        let mut el = EventLoop::new(nodes, self.config.latency.clone(), 0xB0B);
        for i in 0..self.config.nodes {
            el.seed_timer(i, 0, 0);
            el.seed_timer(i, self.config.timeout_ns, TIMER_PACEMAKER);
        }
        el.run_until(duration_ns);
        // Each commit is recorded exactly once, at the leader that formed
        // the committing QC — aggregate across honest nodes.
        let committed: Vec<(u64, u64)> = (0..self.config.nodes)
            .filter(|i| !self.config.faulty.contains(i))
            .flat_map(|i| el.node(i).committed.iter().copied())
            .collect();
        let blocks = committed.len() as u64;
        let mean_latency_ns = if committed.is_empty() {
            0.0
        } else {
            committed.iter().map(|(_, l)| *l as f64).sum::<f64>() / committed.len() as f64
        };
        ConsensusReport {
            throughput_tps: blocks as f64 * self.config.block_txns as f64
                / (duration_ns as f64 / 1e9),
            latency_ms: mean_latency_ns / 1e6,
            committed_blocks: blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: usize, latency: LatencyModel) -> ConsensusReport {
        let config = HotStuffConfig {
            nodes,
            latency,
            ..HotStuffConfig::default()
        };
        HotStuffSim::new(config).run(3_000_000_000)
    }

    #[test]
    fn four_nodes_make_progress_in_lan() {
        let report = quick(4, LatencyModel::lan_1g());
        assert!(report.committed_blocks > 100, "{report:?}");
        assert!(report.throughput_tps > 10_000.0, "{report:?}");
        assert!(report.latency_ms > 0.0);
    }

    #[test]
    fn wan_latency_much_higher_than_lan() {
        let lan = quick(8, LatencyModel::lan_5g());
        let wan = quick(8, LatencyModel::wan_4_continents());
        assert!(
            wan.latency_ms > 10.0 * lan.latency_ms,
            "lan={lan:?} wan={wan:?}"
        );
        assert!(wan.committed_blocks > 0);
    }

    #[test]
    fn consensus_outruns_disk_db_layer() {
        // The Figure 1 claim: even 80-node HotStuff beats the ~3–12 K tps
        // disk database layers by a wide margin.
        let report = quick(16, LatencyModel::lan_5g());
        assert!(
            report.throughput_tps > 30_000.0,
            "consensus must not be the bottleneck: {report:?}"
        );
    }

    #[test]
    fn view_change_survives_silent_leader() {
        // Node 1 leads view 1... make node 1 faulty; the pacemaker must
        // route around it and still commit blocks.
        let mut config = HotStuffConfig {
            nodes: 4,
            timeout_ns: 200_000_000,
            ..HotStuffConfig::default()
        };
        config.faulty.insert(1);
        let report = HotStuffSim::new(config).run(10_000_000_000);
        assert!(
            report.committed_blocks > 0,
            "view change must restore progress: {report:?}"
        );
    }

    #[test]
    fn honest_nodes_agree_on_delivery_logs() {
        let config = HotStuffConfig {
            nodes: 4,
            ..HotStuffConfig::default()
        };
        let nodes: Vec<HsNode> = (0..config.nodes)
            .map(|i| HsNode::new(i, config.clone()))
            .collect();
        let mut el = EventLoop::new(nodes, LatencyModel::lan_1g(), 0xB0B);
        for i in 0..config.nodes {
            el.seed_timer(i, 0, 0);
            el.seed_timer(i, config.timeout_ns, TIMER_PACEMAKER);
        }
        el.run_until(3_000_000_000);
        let reference = &el.node(0).delivery_log;
        assert!(reference.len() > 100, "{}", reference.len());
        for i in 0..config.nodes {
            let log = &el.node(i).delivery_log;
            assert_eq!(log.mismatches(), 0);
            assert!(
                log.agrees_with(reference),
                "node {i}'s committed sequence diverged"
            );
            // Nodes may trail by the views still in flight at cutoff, but
            // never by more than the 3-chain pipeline depth.
            assert!(
                (log.len() as i64 - reference.len() as i64).abs() <= 3,
                "node {i}: {} vs {} commits",
                log.len(),
                reference.len()
            );
            assert_eq!(log.digest_at(1), Some(view_digest(1)));
        }
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(7, LatencyModel::lan_1g());
        let b = quick(7, LatencyModel::lan_1g());
        assert_eq!(a.committed_blocks, b.committed_blocks);
        assert!((a.latency_ms - b.latency_ms).abs() < f64::EPSILON);
    }
}
