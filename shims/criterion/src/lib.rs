//! Minimal, offline stand-in for `criterion`.
//!
//! Supports the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Bencher::iter` and
//! `Bencher::iter_batched`, and [`black_box`]. Instead of criterion's
//! statistical pipeline it runs a short warm-up followed by a fixed
//! sample of iterations and prints the mean wall-clock time per
//! iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { samples: 10 }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    samples: u64,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.samples = n.max(1) as u64;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.samples, f);
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Whether the harness was invoked with `--test` (smoke mode, mirroring
/// real criterion): every routine runs exactly once and no timing is
/// reported, so CI can verify benches still build and run without paying
/// for a measurement.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: u64, mut f: F) {
    let test = test_mode();
    let mut bencher = Bencher {
        iters: if test { 1 } else { samples },
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test {
        println!("  {name}: test ok");
    } else {
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
        println!("  {name}: {per_iter} ns/iter ({} iters)", bencher.iters);
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Group benchmark functions under one callable target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            let mut next = 0u64;
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], 1);
    }
}
