//! Minimal, offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API this workspace uses:
//! [`Bytes`] (a cheaply-clonable immutable byte buffer), [`BytesMut`]
//! (a growable builder that freezes into [`Bytes`]), and the [`Buf`] /
//! [`BufMut`] traits with the little-endian accessors the codec needs.
//!
//! `Bytes` holds either an `Arc<Vec<u8>>` or a `&'static [u8]` (mirroring
//! the real crate's representation): clones are O(1), freezing a
//! `BytesMut` or converting from a `Vec<u8>` is a move rather than a copy,
//! `from_static` is zero-copy, and the buffer is shared — the properties
//! the transaction substrate relies on when values flow through read
//! sets, write sets and snapshots.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub const fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// Wrap a static slice (zero-copy).
    #[must_use]
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(data),
        }
    }

    /// Copy a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Shared(data) => data,
            Repr::Static(data) => data,
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes::from(Vec::from(v))
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable, cheaply clonable buffer.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor (implemented for `&[u8]`).
pub trait Buf {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Borrow the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append access to a growable byte buffer (implemented for [`BytesMut`]
/// and `Vec<u8>`).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, v: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn bytesmut_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(7);
        m.put_u32_le(0xAABB_CCDD);
        let b = m.freeze();
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xAABB_CCDD);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn buf_le_accessors() {
        let mut v = Vec::new();
        v.put_u16_le(513);
        v.put_u64_le(u64::MAX - 1);
        v.put_i64_le(-9);
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -9);
    }

    #[test]
    fn ordering_matches_slices() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
        assert_eq!(a, b"abc".to_vec());
    }
}
