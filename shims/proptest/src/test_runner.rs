//! Deterministic RNG driving case generation.

/// A splitmix64 generator seeded from the test name and case index, so
/// every run of a property test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    /// RNG for one `(test name, case index)` pair.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let seed = fnv1a(name) ^ (u64::from(case) + 1).wrapping_mul(GOLDEN);
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift bounded sampling; bias is negligible for test use.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(n)) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
