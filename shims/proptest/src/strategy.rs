//! The [`Strategy`] trait and the strategy constructors the workspace uses.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ── Integer ranges ──────────────────────────────────────────────────────

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = self.end.abs_diff(self.start);
                let off = rng.below(u64::try_from(width).expect("range width"));
                self.start.wrapping_add(off as $ty)
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ── `any::<T>()` ────────────────────────────────────────────────────────

/// Types with a canonical "uniform random" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over all values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ── Tuples ──────────────────────────────────────────────────────────────

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ── Collections and options ─────────────────────────────────────────────

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool() {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `prop::option::of`: `None` or `Some(inner)` with equal probability.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

// ── Samples ─────────────────────────────────────────────────────────────

/// An index into a collection whose length is only known at use time
/// (`prop::sample::Index`).
#[derive(Debug, Clone, Copy)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Resolve against a concrete collection length (`len > 0`).
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64(),
        }
    }
}

// ── Union (prop_oneof!) ─────────────────────────────────────────────────

/// A boxed generator function; see [`gen_box`].
pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Erase a strategy into a boxed generator (used by `prop_oneof!`).
pub fn gen_box<S: Strategy + 'static>(strategy: S) -> BoxedGen<S::Value> {
    Box::new(move |rng| strategy.generate(rng))
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedGen<T>>,
}

impl<T> Union<T> {
    /// Build from the arm generators (`arms` must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedGen<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        (self.arms[arm])(rng)
    }
}

// ── Regex-lite string strategies ────────────────────────────────────────

/// String patterns as strategies. Supports the subset of regex syntax the
/// workspace's tests use: a sequence of literal characters and character
/// classes `[a-z09]`, each optionally repeated `{m}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated [class] in string strategy")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in [class]");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                assert!(
                    !"\\.*+?()|^$".contains(c),
                    "unsupported regex syntax {c:?} in string strategy {self:?}"
                );
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {m,n} in string strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("repeat min"),
                        n.parse::<usize>().expect("repeat max"),
                    ),
                    None => {
                        let m = body.parse::<usize>().expect("repeat count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repeat {{m,n}}");
            let reps = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..reps {
                let pick = rng.below(choices.len() as u64) as usize;
                out.push(choices[pick]);
            }
        }
        out
    }
}
