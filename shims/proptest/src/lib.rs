//! Minimal, offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro, the [`Strategy`](strategy::Strategy)
//! trait with `prop_map`, integer-range / tuple / `Just` / regex-lite
//! string strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::Index`, [`prop_oneof!`] and the `prop_assert_*` macros.
//!
//! Cases are generated from a deterministic RNG seeded per test name and
//! case index, so failures are reproducible run-to-run. Unlike real
//! proptest there is **no shrinking**: a failing case panics with the
//! generated inputs visible in the assertion message.

pub mod strategy;
pub mod test_runner;

/// Strategy modules under their proptest paths (`prop::collection::vec`,
/// `prop::option::of`, `prop::sample::Index`).
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies (`prop::option::of`).
    pub mod option {
        pub use crate::strategy::of;
    }
    /// Sampling helpers (`prop::sample::Index`).
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body for N generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg).cases; $($rest)*);
    };
    (@munch $cases:expr;) => {};
    (@munch $cases:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases: u32 = $cases;
            for case in 0..cases {
                let mut prop_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest!(@munch $cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch 256u32; $($rest)*);
    };
}

/// Assert a boolean property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality (maps to `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality (maps to `assert_ne!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::gen_box($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..6, z in 0usize..2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..6).contains(&y));
            prop_assert!(z < 2);
        }

        #[test]
        fn vec_len_respects_size(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn map_and_oneof(
            cmd in prop_oneof![
                (0u64..4).prop_map(|v| v * 2),
                Just(99u64),
            ],
            s in "[a-c]{1,4}",
            opt in prop::option::of(0i64..3),
            idx in any::<prop::sample::Index>()
        ) {
            prop_assert!(cmd == 99 || cmd % 2 == 0);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.bytes().all(|b| (b'a'..=b'c').contains(&b)));
            if let Some(o) = opt {
                prop_assert!((0..3).contains(&o));
            }
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
