//! Workspace-level integration tests: the full stack (storage → DCC →
//! chain → workloads) exercised through the facade crate.

use std::sync::Arc;

use harmonybc::baselines::{DccEngine, Rbc};
use harmonybc::chain::{ChainConfig, OeChain};
use harmonybc::common::{BlockId, DetRng};
use harmonybc::core::executor::ExecBlock;
use harmonybc::core::{BlockStats, HarmonyConfig, SnapshotStore};
use harmonybc::storage::{StorageConfig, StorageEngine};
use harmonybc::workloads::{
    Smallbank, SmallbankCodec, SmallbankConfig, Tpcc, TpccConfig, Workload, Ycsb, YcsbCodec,
    YcsbConfig,
};

#[test]
fn five_replicas_converge_on_ycsb() {
    // Five replicas with different worker counts and ablation configs that
    // do not change semantics... (worker counts only; the protocol config
    // must be identical for identical outcomes).
    let roots: Vec<_> = [1usize, 2, 4, 6, 8]
        .into_iter()
        .map(|workers| {
            let config = ChainConfig {
                harmony: HarmonyConfig {
                    workers,
                    ..HarmonyConfig::default()
                },
                ..ChainConfig::in_memory()
            };
            let mut chain = OeChain::in_memory(config).unwrap();
            let mut w = Ycsb::new(YcsbConfig {
                keys: 500,
                theta: 0.9,
                ..YcsbConfig::default()
            });
            w.setup(chain.engine()).unwrap();
            let codec = YcsbCodec { table: w.table() };
            let mut rng = DetRng::new(12345);
            for _ in 0..10 {
                chain
                    .submit_block(w.next_block(&mut rng, 25), &codec)
                    .unwrap();
            }
            (chain.state_root().unwrap(), chain.last_hash())
        })
        .collect();
    for pair in roots.windows(2) {
        assert_eq!(pair[0], pair[1], "replica divergence");
    }
}

#[test]
fn smallbank_send_payments_conserve_money() {
    // SendPayment/Amalgamate only move money; Balance only reads. A pure
    // payment mix must leave the total balance invariant under Harmony,
    // whatever the contention.
    use harmonybc::txn::row::read_i64;
    use harmonybc::workloads::smallbank::{build_txn, Procedure, BALANCE_OFFSET, INITIAL_BALANCE};

    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
    let mut bank = Smallbank::new(SmallbankConfig {
        accounts: 50,
        theta: 0.0,
        ..SmallbankConfig::default()
    });
    bank.setup(&engine).unwrap();
    let (checking, savings) = bank.tables();
    let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
    let mut pipeline =
        harmonybc::core::ChainPipeline::new(Arc::clone(&store), HarmonyConfig::default());
    let mut rng = DetRng::new(31);
    for b in 1..=15u64 {
        let txns = (0..20)
            .map(|_| {
                let a0 = rng.gen_range(50);
                let a1 = (a0 + 1 + rng.gen_range(49)) % 50;
                let amount = 1 + rng.gen_range(50) as i64;
                build_txn(checking, savings, Procedure::SendPayment, a0, a1, amount)
            })
            .collect();
        pipeline
            .execute_one(&ExecBlock::new(BlockId(b), txns))
            .unwrap();
    }
    let mut total = 0i64;
    for table in [checking, savings] {
        engine
            .scan(table, b"", None, |_, v| {
                total += read_i64(v, BALANCE_OFFSET).unwrap();
                true
            })
            .unwrap();
    }
    assert_eq!(total, 2 * 50 * INITIAL_BALANCE, "money must be conserved");
}

#[test]
fn tpcc_runs_on_rbc_and_harmony_with_same_inputs() {
    // Different DCC protocols may commit different subsets, but both must
    // stay serializable and make progress on the relational workload.
    let run = |use_rbc: bool| -> BlockStats {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let mut tpcc = Tpcc::new(TpccConfig {
            warehouses: 1,
            scale: 0.01,
            ..TpccConfig::default()
        });
        tpcc.setup(&engine).unwrap();
        let store = Arc::new(SnapshotStore::new(engine));
        let dcc: Arc<dyn DccEngine> = if use_rbc {
            Arc::new(Rbc::new(Arc::clone(&store), 4))
        } else {
            Arc::new(harmonybc::baselines::HarmonyEngine::new(
                Arc::clone(&store),
                HarmonyConfig::default(),
            ))
        };
        let mut rng = DetRng::new(77);
        let mut totals = BlockStats::default();
        for b in 1..=6u64 {
            let block = ExecBlock::new(BlockId(b), tpcc.next_block(&mut rng, 15));
            totals.absorb(&dcc.execute_block(&block).unwrap().stats);
        }
        totals
    };
    let harmony = run(false);
    let rbc = run(true);
    assert!(harmony.committed > 0 && rbc.committed > 0);
    assert!(
        harmony.committed >= rbc.committed,
        "harmony={harmony} rbc={rbc}"
    );
}

#[test]
fn recovery_preserves_chain_across_smallbank_checkpoints() {
    let config = ChainConfig {
        checkpoint_every: 3,
        ..ChainConfig::in_memory()
    };
    let mut chain = OeChain::in_memory(config).unwrap();
    let mut bank = Smallbank::new(SmallbankConfig {
        accounts: 100,
        theta: 0.8,
        ..SmallbankConfig::default()
    });
    bank.setup(chain.engine()).unwrap();
    let (checking, savings) = bank.tables();
    let codec = SmallbankCodec { checking, savings };
    let mut rng = DetRng::new(5);
    for _ in 0..8 {
        chain
            .submit_block(bank.next_block(&mut rng, 20), &codec)
            .unwrap();
    }
    let root = chain.state_root().unwrap();
    let tip = chain.last_hash();
    chain.crash_and_recover(&codec).unwrap();
    assert_eq!(chain.height(), BlockId(8));
    assert_eq!(chain.state_root().unwrap(), root);
    assert_eq!(chain.last_hash(), tip);
}

#[test]
fn prelude_exposes_entry_points() {
    use harmonybc::prelude::*;
    let chain = OeChain::in_memory(ChainConfig::in_memory()).unwrap();
    assert_eq!(chain.height(), BlockId(0));
    let engine = StorageEngine::open(&StorageConfig::memory()).unwrap();
    let t = engine.create_table("x").unwrap();
    engine.put(t, b"k", b"v").unwrap();
    assert_eq!(engine.get(t, b"k").unwrap(), Some(b"v".to_vec()));
}
