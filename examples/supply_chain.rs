//! Relational smart contracts: TPC-C order processing as a supply-chain
//! ledger — the workloads with data-dependent branches that static
//! analysis cannot handle and optimistic DCC executes natively.
//!
//! ```sh
//! cargo run --release --example supply_chain
//! ```

use std::sync::Arc;

use harmonybc::common::{BlockId, DetRng};
use harmonybc::core::executor::ExecBlock;
use harmonybc::core::{ChainPipeline, HarmonyConfig, SnapshotStore};
use harmonybc::storage::{StorageConfig, StorageEngine};
use harmonybc::txn::row::read_i64;
use harmonybc::workloads::tpcc::{dist, DISTRICTS};
use harmonybc::workloads::{Tpcc, TpccConfig, Workload};

fn main() -> harmonybc::common::Result<()> {
    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory())?);
    let mut tpcc = Tpcc::new(TpccConfig {
        warehouses: 2,
        scale: 0.02,
        ..TpccConfig::default()
    });
    println!("loading 2 warehouses...");
    tpcc.setup(&engine)?;
    let tables = tpcc.tables();

    let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
    let mut pipeline = ChainPipeline::new(Arc::clone(&store), HarmonyConfig::default());

    let mut rng = DetRng::new(7);
    let mut committed = 0usize;
    let mut attempts = 0usize;
    for b in 1..=15u64 {
        let block = ExecBlock::new(BlockId(b), tpcc.next_block(&mut rng, 20));
        let result = pipeline.execute_one(&block)?;
        committed += result.stats.committed;
        attempts += result.stats.txns;
    }
    println!("{committed}/{attempts} transactions committed across 15 blocks");

    // Orders flowed: district next_o_id counters moved past their initial
    // value wherever NewOrders landed.
    let initial = tpcc.config().initial_orders() as i64;
    let mut total_new_orders = 0i64;
    for w in 0..2u64 {
        for d in 0..DISTRICTS {
            let mut key = w.to_be_bytes().to_vec();
            key.push(d as u8);
            let row = engine.get(tables.district, &key)?.expect("district row");
            total_new_orders += read_i64(&row, dist::NEXT_O_ID).unwrap() - initial;
        }
    }
    println!("{total_new_orders} new orders accepted (district counters advanced)");
    println!(
        "order lines on file: {}",
        engine.table_len(tables.order_line)?
    );
    Ok(())
}
