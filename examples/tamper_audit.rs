//! Tamper evidence: hash-chained blocks with Merkle roots make any
//! modification of history detectable by back-tracing hashes (§4 of the
//! paper: a tamper-proof input implies a tamper-proof final state under
//! deterministic execution).
//!
//! ```sh
//! cargo run --example tamper_audit
//! ```

use harmonybc::chain::{ChainConfig, OeChain};
use harmonybc::common::DetRng;
use harmonybc::crypto::{CryptoCost, Verifier};
use harmonybc::workloads::{Workload, Ycsb, YcsbCodec, YcsbConfig};

fn main() -> harmonybc::common::Result<()> {
    let mut chain = OeChain::in_memory(ChainConfig::in_memory())?;
    let mut workload = Ycsb::new(YcsbConfig {
        keys: 200,
        ..YcsbConfig::default()
    });
    workload.setup(chain.engine())?;
    let codec = YcsbCodec {
        table: workload.table(),
    };

    let mut rng = DetRng::new(99);
    for _ in 0..5 {
        chain.submit_block(workload.next_block(&mut rng, 10), &codec)?;
    }

    // An auditor replays the persisted chain and checks every link.
    let blocks = chain.verify_chain()?;
    println!(
        "audit: {} blocks verified, tip = {}",
        blocks.len(),
        chain.last_hash()
    );

    // An attacker rewrites one transaction inside block 3...
    let mut forged = blocks[2].clone();
    forged.txns[0] = b"\x04\x00ycsbforged-payload".to_vec();
    let verifier = Verifier::new(b"harmonybc-cluster", CryptoCost::free());
    let prev = blocks[1].header.hash();
    match forged.verify(&prev, &verifier) {
        Err(e) => println!("tamper detected: {e}"),
        Ok(()) => unreachable!("forgery must not verify"),
    }

    // ...and even a fully re-sealed forgery breaks the chain linkage:
    // block 4 still points at the original block 3's hash.
    let next_prev_expected = blocks[3].header.prev_hash;
    assert_eq!(next_prev_expected, blocks[2].header.hash());
    println!(
        "block 4 pins block 3 to {} — history is immutable without rewriting every later block",
        &blocks[2].header.hash().to_hex()[..16]
    );
    Ok(())
}
