//! Cluster demo: the full Order-Execute loop as a running system.
//!
//! Open-loop clients → mempool admission → Kafka-style ordering → four
//! replicas executing sealed blocks — with one replica crashing mid-run
//! and rejoining via state-sync — and every replica finishing on the
//! same bit-identical state root.
//!
//! ```sh
//! cargo run --example cluster_demo
//! ```

use harmonybc::chain::ChainConfig;
use harmonybc::crypto::CryptoCost;
use harmonybc::node::{
    Cluster, ClusterConfig, ClusterWorkload, CrashPlan, MempoolConfig, OrderingMode, ReplicaConfig,
    SyncPolicy,
};
use harmonybc::sim::EngineKind;
use harmonybc::storage::StorageConfig;
use harmonybc::workloads::{OpenLoopConfig, SmallbankConfig};

fn main() {
    let config = ClusterConfig {
        replicas: 4,
        // Flat replicas; see `ShardTopology` + the sharded_node_e2e tests
        // for the N-replica × M-shard deployment.
        topology: None,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 5,
                ..ChainConfig::default()
            },
            engine: EngineKind::Harmony(harmonybc::core::HarmonyConfig::default()),
            workers: 2,
            gossip_every: 5,
        },
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 500,
            theta: 0.6,
            ..SmallbankConfig::default()
        }),
        ordering: OrderingMode::Kafka { brokers: 3 },
        // Replica 2 goes down 8 ms in and rejoins at 16 ms: it recovers
        // its local checkpoint, then catches the missed range up from a
        // peer via the state-sync protocol. `CrashPlan` is the one-crash
        // shorthand; richer scenarios build a `FaultSchedule` directly.
        faults: CrashPlan {
            replica: 2,
            at_ns: 8_000_000,
            recover_at_ns: 16_000_000,
        }
        .into(),
        mempool: MempoolConfig::default(),
        open_loop: OpenLoopConfig {
            clients: 8,
            rate_tps: 60_000.0,
            hot_share: 0.0,
        },
        load_ns: 25_000_000,
        drain_ns: 600_000_000,
        block_txns: 32,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        latency: harmonybc::consensus::net::LatencyModel::lan_1g(),
        metrics_every_ns: 5_000_000,
        seed: 0xDE30,
        ..ClusterConfig::default()
    };

    let report = Cluster::new(config).run().expect("cluster run");

    println!("mempool:   {:?}", report.mempool);
    println!(
        "ordering:  {} blocks sealed from {} submissions",
        report.sealed_blocks, report.submitted_txns
    );
    println!(
        "runtime:   {:.0} tps end-to-end, {:.2} ms submit→commit latency",
        report.metrics.throughput_tps, report.metrics.latency_ms
    );
    for r in &report.replicas {
        println!(
            "replica {}: height {}, root {}…{}",
            r.replica,
            r.height,
            &r.root.to_hex()[..8],
            if r.recoveries > 0 {
                format!(
                    " (crashed, recovered, {} blocks via state-sync)",
                    r.sync_blocks
                )
            } else {
                String::new()
            }
        );
    }
    assert!(report.consistent, "replicas diverged!");
    assert_eq!(report.divergence_alarms, 0);
    assert_eq!(report.replicas[2].recoveries, 1);
    println!("all four replicas agree — bit-identical state roots ✔");
}
