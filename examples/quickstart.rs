//! Quickstart: build a HarmonyBC node, run a few blocks of a custom smart
//! contract, and inspect the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use harmonybc::chain::{ChainConfig, OeChain};
use harmonybc::common::ids::TableId;
use harmonybc::txn::{Contract, FnContract, Key, TxnCtx};

/// A trivial codec for our counter contracts (the smart-contract registry
/// a replica would use to replay logged blocks).
struct CounterCodec {
    table: TableId,
}

impl harmonybc::txn::ContractCodec for CounterCodec {
    fn decode(&self, bytes: &[u8]) -> harmonybc::common::Result<Arc<dyn Contract>> {
        let (_, payload) = harmonybc::txn::split_encoded(bytes)?;
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        Ok(increment(self.table, id))
    }
}

/// `UPDATE counters SET value = value + 1 WHERE id = ?` as a contract.
fn increment(table: TableId, id: u64) -> Arc<dyn Contract> {
    Arc::new(
        FnContract::new("inc", move |ctx: &mut TxnCtx<'_>| {
            // A single-statement read-modify-write: Harmony reorders and
            // coalesces these, so concurrent increments never abort.
            ctx.add_i64(Key::from_u64(table, id), 0, 1);
            Ok(())
        })
        .with_payload(id.to_le_bytes().to_vec()),
    )
}

fn main() -> harmonybc::common::Result<()> {
    // 1. A fresh in-memory HarmonyBC node (Harmony DCC, logical logging,
    //    checkpoints every 10 blocks).
    let mut chain = OeChain::in_memory(ChainConfig::in_memory())?;

    // 2. Genesis state: one table with ten counters.
    let table = chain.engine().create_table("counters")?;
    for id in 0..10u64 {
        chain
            .engine()
            .put(table, &id.to_be_bytes(), &0i64.to_le_bytes())?;
    }
    let codec = CounterCodec { table };

    // 3. Submit three blocks of contended increments — every transaction
    //    in a block hits the same hot counter, and all of them commit.
    for round in 0..3u64 {
        let txns: Vec<Arc<dyn Contract>> = (0..20).map(|_| increment(table, round % 10)).collect();
        let (block, result) = chain.submit_block(txns, &codec)?;
        println!(
            "block {:>2} [{}]: {} committed / {} txns, aborts: {}",
            block.header.id,
            &block.header.hash().to_hex()[..12],
            result.stats.committed,
            result.stats.txns,
            result.stats.protocol_aborts(),
        );
    }

    // 4. Inspect the state: counter of round 0 took 20 increments, etc.
    for id in 0..3u64 {
        let v = chain.engine().get(table, &id.to_be_bytes())?.unwrap();
        println!(
            "counter {id} = {}",
            i64::from_le_bytes(v.as_slice().try_into().unwrap())
        );
    }

    // 5. The chain is tamper-evident and replayable.
    let blocks = chain.verify_chain()?;
    println!(
        "verified {} blocks; state root {}",
        blocks.len(),
        chain.state_root()?
    );
    Ok(())
}
