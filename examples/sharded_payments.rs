//! Sharded payments: partition-aware Smallbank across 4 shards with
//! deterministic cross-shard transfers — no two-phase commit, no votes.
//!
//! ```sh
//! cargo run --release --example sharded_payments
//! ```

use std::sync::Arc;

use harmonybc::common::DetRng;
use harmonybc::shard::{HashPartitioner, ShardEngine, ShardGroup, ShardGroupConfig, ShardRouter};
use harmonybc::workloads::{Smallbank, SmallbankConfig, Workload};

const SHARDS: usize = 4;
const PARTITIONS: u32 = 16;
const BLOCKS: u64 = 15;
const BLOCK_SIZE: usize = 60;

fn main() -> harmonybc::common::Result<()> {
    // 10% of two-account procedures (SendPayment, Amalgamate) pick their
    // counterparty in a foreign partition → cross-shard transactions.
    let mut bank = Smallbank::new(SmallbankConfig {
        accounts: 2_000,
        theta: 0.5,
        partitions: u64::from(PARTITIONS),
        multi_partition_ratio: 0.10,
    });

    let router = ShardRouter::new(Arc::new(HashPartitioner::new(PARTITIONS)), SHARDS);
    let mut group = ShardGroup::new(router, &ShardGroupConfig::in_memory(), |store| {
        ShardEngine::Harmony.build(store, 4)
    })?;
    group.setup_with(|engine| bank.setup(engine))?;

    println!(
        "Smallbank on {SHARDS} shards ({PARTITIONS} logical partitions), \
         {BLOCKS} blocks × {BLOCK_SIZE} txns, 10% cross-partition transfers:\n"
    );
    let mut rng = DetRng::new(2026);
    let (mut committed, mut cross, mut cross_committed) = (0usize, 0usize, 0usize);
    let mut shard_committed = [0usize; SHARDS];
    for _ in 0..BLOCKS {
        let result = group.execute_block(bank.next_block(&mut rng, BLOCK_SIZE))?;
        committed += result.stats.committed;
        cross += result.cross_txns;
        cross_committed += result.cross_committed;
        for (s, r) in result.shard_results.iter().enumerate() {
            shard_committed[s] += r.stats.committed;
        }
    }
    println!(
        "committed {committed}/{} transactions; {cross} cross-shard, \
         {cross_committed} of them committed with zero coordination rounds\n",
        BLOCKS as usize * BLOCK_SIZE
    );

    let roots = group.state_roots()?;
    for (s, root) in roots.shard_roots.iter().enumerate() {
        println!(
            "shard {s}: {:>4} sub-block commits (incl. fragments), root {}",
            shard_committed[s],
            &root.to_hex()[..16]
        );
    }
    println!("\nglobal state root (Merkle fold): {}", roots.root.to_hex());
    println!(
        "logical state root (shard-count invariant): {}",
        group.logical_state_root()?.to_hex()
    );
    Ok(())
}
