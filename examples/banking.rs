//! Banking scenario: the Smallbank workload on HarmonyBC vs AriaBC under a
//! hot-account storm — the paper's core claim in miniature.
//!
//! ```sh
//! cargo run --release --example banking
//! ```

use std::sync::Arc;

use harmonybc::baselines::{Aria, AriaConfig, DccEngine, HarmonyEngine};
use harmonybc::common::{BlockId, DetRng};
use harmonybc::core::executor::ExecBlock;
use harmonybc::core::{BlockStats, HarmonyConfig, SnapshotStore};
use harmonybc::storage::{StorageConfig, StorageEngine};
use harmonybc::workloads::smallbank::{build_txn, Procedure};
use harmonybc::workloads::{Smallbank, SmallbankConfig, Workload};

fn run(name: &str, harmony: bool) -> harmonybc::common::Result<BlockStats> {
    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory())?);
    let mut bank = Smallbank::new(SmallbankConfig {
        accounts: 1_000,
        theta: 0.0,
        ..SmallbankConfig::default()
    });
    bank.setup(&engine)?;
    let (checking, savings) = bank.tables();
    let store = Arc::new(SnapshotStore::new(engine));
    let dcc: Arc<dyn DccEngine> = if harmony {
        Arc::new(HarmonyEngine::new(
            Arc::clone(&store),
            HarmonyConfig::default(),
        ))
    } else {
        Arc::new(Aria::new(Arc::clone(&store), AriaConfig::default()))
    };

    // A payday storm: everyone deposits into a handful of hot merchant
    // accounts — single-statement read-modify-write UPDATEs, the shape
    // Harmony reorders and coalesces while Aria aborts on ww-conflicts.
    let mut rng = DetRng::new(2024);
    let mut totals = BlockStats::default();
    for b in 1..=20u64 {
        let txns = (0..30)
            .map(|_| {
                let hot = rng.gen_range(5); // 5 hot merchant accounts
                let amount = 1 + rng.gen_range(100) as i64;
                build_txn(
                    checking,
                    savings,
                    Procedure::DepositChecking,
                    hot,
                    0,
                    amount,
                )
            })
            .collect();
        let block = ExecBlock::new(BlockId(b), txns);
        totals.absorb(&dcc.execute_block(&block)?.stats);
    }
    println!(
        "{name:>10}: {} committed, {} protocol aborts, abort rate {:.1}%",
        totals.committed,
        totals.protocol_aborts(),
        totals.abort_rate() * 100.0
    );
    Ok(totals)
}

fn main() -> harmonybc::common::Result<()> {
    println!("Smallbank deposit storm: 5 hot merchant accounts, 20 blocks × 30 txns:\n");
    let harmony = run("HarmonyBC", true)?;
    let aria = run("AriaBC", false)?;
    println!(
        "\nHarmony committed {:.2}× the transactions per attempt \
         (update reordering turns Aria's ww-aborts into commits).",
        (harmony.committed as f64 / harmony.txns as f64)
            / (aria.committed as f64 / aria.txns as f64)
    );
    Ok(())
}
