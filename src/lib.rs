//! # HarmonyBC
//!
//! A reproduction of *"When Private Blockchain Meets Deterministic
//! Database"* (SIGMOD 2023): the **Harmony** deterministic concurrency
//! control protocol and the **HarmonyBC** private blockchain built on it,
//! together with every substrate the paper depends on — a disk-oriented
//! storage engine, baseline DCC protocols (Aria, RBC, Fabric, FastFabric#),
//! a consensus layer (chained HotStuff and a Kafka-like sequencer), and the
//! Smallbank / YCSB / TPC-C workloads used in the evaluation.
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users depend on a single crate:
//!
//! ```
//! use harmonybc::prelude::*;
//!
//! // Build a tiny in-memory chain with the Harmony DCC.
//! let chain = OeChain::in_memory(ChainConfig::in_memory()).unwrap();
//! assert_eq!(chain.height(), BlockId(0));
//! ```

pub use harmony_chain as chain;
pub use harmony_common as common;
pub use harmony_consensus as consensus;
pub use harmony_core as core;
pub use harmony_crypto as crypto;
pub use harmony_dcc_baselines as baselines;
pub use harmony_metrics as metrics;
pub use harmony_node as node;
pub use harmony_shard as shard;
pub use harmony_sim as sim;
pub use harmony_storage as storage;
pub use harmony_transport as transport;
pub use harmony_txn as txn;
pub use harmony_workloads as workloads;

/// Convenience re-exports covering the common entry points.
pub mod prelude {
    pub use harmony_chain::{ChainConfig, OeChain, SovChain};
    pub use harmony_common::{BlockId, TableId, TxnId};
    pub use harmony_core::{BlockExecutor, ChainPipeline, HarmonyConfig, SnapshotStore};
    pub use harmony_dcc_baselines::{DccEngine, HarmonyEngine};
    pub use harmony_metrics::{Registry, Timeline};
    pub use harmony_node::{Cluster, ClusterConfig, ClusterWorkload, Mempool, ReplicaNode};
    pub use harmony_shard::{
        HashPartitioner, Partitioner, RangePartitioner, ShardGroup, ShardGroupConfig, ShardRouter,
    };
    pub use harmony_storage::{DiskProfile, StorageConfig, StorageEngine};
    pub use harmony_txn::{Contract, ContractCodec, Key, TxnCtx, UpdateCommand, Value};
    pub use harmony_workloads::{Smallbank, Tpcc, Workload, Ycsb};
}
